//! Streaming pipeline executor support (§IV overlap, DESIGN.md §4).
//!
//! The GSNP window loop decomposes into four stages with no data
//! dependencies *across* windows:
//!
//! ```text
//! producer (read_site) ─► device (counting+likelihood) ─► posterior ─► output
//! ```
//!
//! [`crate::pipeline::GsnpPipeline`] runs these stages on dedicated host
//! threads connected by bounded channels of configurable depth
//! (`GsnpConfig::pipeline_depth`), so window *k*'s host-side work overlaps
//! window *k+1*'s device work — the double-buffering a CUDA implementation
//! gets from streams. This module holds the pieces shared by that executor
//! and by the parallel SOAPsnp serializer:
//!
//! * [`OrderedReassembler`] — restores window-index order on the output
//!   side, which is what keeps the compressed result file byte-identical
//!   to a serial run (§IV-G).
//! * [`StageStats`] / [`OverlapStats`] — per-stage busy and stall time,
//!   from which the achieved pipeline depth is derived.
//! * [`PipelineTrace`] — the host-side tracks of the tracing subsystem
//!   (`GsnpConfig::trace`): one span track per pipeline stage and per
//!   device lane under a `"pipeline"` process, recording the *same*
//!   busy/stall durations that land in [`StageStats`], plus steal
//!   instants. [`verify_overlap_consistency`] cross-checks the two
//!   accounting systems against each other.

use std::collections::BTreeMap;
use std::sync::Arc;

use gpu_sim::trace::{NameId, SpanArgs, TraceRecorder, TraceSnapshot, TrackId, TrackKind};

/// Restores stream order at a pipeline's ordered sink.
///
/// Stages may hand windows over in any order (and a future multi-worker
/// stage certainly would); the sink pushes each `(index, item)` pair here
/// and receives back every item that is now ready to be emitted, strictly
/// in index order starting at 0.
#[derive(Debug)]
pub struct OrderedReassembler<T> {
    next: usize,
    pending: BTreeMap<usize, T>,
}

impl<T> Default for OrderedReassembler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OrderedReassembler<T> {
    /// An empty reassembler expecting index 0 first.
    pub fn new() -> Self {
        OrderedReassembler {
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Offer item `idx`; returns all items that became emittable, in
    /// index order.
    ///
    /// # Panics
    /// Panics if an index is offered twice.
    pub fn push(&mut self, idx: usize, item: T) -> Vec<T> {
        let mut ready = Vec::new();
        ready.extend(self.offer(idx, item));
        while let Some(item) = self.pop_ready() {
            ready.push(item);
        }
        ready
    }

    /// Offer item `idx`; hands it straight back when it is the next
    /// expected index (the common in-order case — no buffering, no
    /// allocation), buffers it otherwise. After a `Some` return, drain
    /// [`Self::pop_ready`] for any successors the item unblocked.
    ///
    /// # Panics
    /// Panics if an index is offered twice.
    pub fn offer(&mut self, idx: usize, item: T) -> Option<T> {
        if idx == self.next {
            self.next += 1;
            return Some(item);
        }
        assert!(
            idx > self.next,
            "window index {idx} reassembled twice (next is {})",
            self.next
        );
        let prev = self.pending.insert(idx, item);
        assert!(prev.is_none(), "window index {idx} reassembled twice");
        None
    }

    /// Pop the next in-order item if a previous out-of-order offer
    /// buffered it, else `None`.
    pub fn pop_ready(&mut self) -> Option<T> {
        let item = self.pending.remove(&self.next)?;
        self.next += 1;
        Some(item)
    }

    /// Items buffered out of order, awaiting a predecessor.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Next index the sink is waiting for.
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// True once everything offered has also been emitted.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Split a sample-major cohort batch into per-sample runs.
///
/// The cohort producer concatenates the same `k` windows of every sample
/// into one device batch, ordered `[s0:w0..wk-1][s1:w0..wk-1]…` — one
/// launch scores all samples, and this inverse recovers each sample's
/// contiguous slice for per-sample posterior/output handling. `items.len()`
/// must be an exact multiple of `num_samples` (every sample reads the same
/// window grid, a structural property of [`seqio::window::WindowReader`]'s
/// reference-tiling).
pub fn demux_sample_major<T>(items: Vec<T>, num_samples: usize) -> Vec<Vec<T>> {
    assert!(num_samples > 0, "cohort batch needs at least one sample");
    assert_eq!(
        items.len() % num_samples,
        0,
        "sample-major batch of {} items does not divide into {} samples",
        items.len(),
        num_samples
    );
    let per_sample = items.len() / num_samples;
    let mut it = items.into_iter();
    (0..num_samples)
        .map(|_| it.by_ref().take(per_sample).collect())
        .collect()
}

/// Busy/stall breakdown for one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Seconds spent doing the stage's own work.
    pub busy: f64,
    /// Seconds blocked waiting to receive from the upstream channel.
    pub stall_in: f64,
    /// Seconds blocked waiting for capacity in the downstream channel.
    pub stall_out: f64,
}

impl StageStats {
    /// Busy plus both stall components.
    pub fn total(&self) -> f64 {
        self.busy + self.stall_in + self.stall_out
    }
}

/// Busy/stall/steal accounting for one device worker of the sharded
/// device stage (`GsnpConfig::num_devices`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceLaneStats {
    /// Stage accounting for this worker alone.
    pub stage: StageStats,
    /// Windows this worker processed.
    pub windows: u64,
    /// Windows processed off their round-robin home device: window `k`
    /// "belongs" to device `k % N`, and the shared work-queue hands it to
    /// whichever worker is free first. A nonzero count is the signature of
    /// dynamic dispatch doing what static round-robin cannot — keeping a
    /// device busy while a sibling chews a skewed window.
    pub steals: u64,
}

/// Pipeline-overlap accounting for one run of the window loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverlapStats {
    /// Configured channel depth (1 = serial execution).
    pub depth: usize,
    /// Producer stage (`read_site`).
    pub read: StageStats,
    /// Device stage (`counting` + `likelihood_sort` + `likelihood_comp`
    /// + `recycle`), summed across all device workers.
    pub device: StageStats,
    /// Per-device-worker breakdown of the device stage, in device order.
    /// One entry even when `num_devices = 1`; empty for the CPU pipeline.
    pub devices: Vec<DeviceLaneStats>,
    /// Posterior stage.
    pub posterior: StageStats,
    /// Output stage (column compression + serialization).
    pub output: StageStats,
    /// Wall-clock of the window loop, start of first window to last byte
    /// written.
    pub wall: f64,
}

impl OverlapStats {
    /// Total busy time across all stages.
    pub fn busy_total(&self) -> f64 {
        self.read.busy + self.device.busy + self.posterior.busy + self.output.busy
    }

    /// Achieved pipeline depth: how many stages were busy at once, on
    /// average. 1.0 means no overlap (serial); the upper bound is the
    /// number of stages plus any extra device workers.
    pub fn achieved_depth(&self) -> f64 {
        if self.wall > 0.0 {
            self.busy_total() / self.wall
        } else {
            0.0
        }
    }

    /// Windows stolen off their home device, summed over all workers.
    pub fn steals_total(&self) -> u64 {
        self.devices.iter().map(|d| d.steals).sum()
    }
}

/// Host-side pipeline tracks of the tracing subsystem: one span track per
/// stage (`read_site`, `posterior`, `output`) plus one per device lane,
/// all under a `"pipeline"` process stamped with host wall clock (the
/// device processes run on their simulated clocks — see
/// `gpu_sim::trace`). Every span records the **identical** `f64` duration
/// the stage adds to its [`StageStats`], which is what lets
/// [`verify_overlap_consistency`] reconcile the two systems to
/// floating-point regrouping error.
///
/// Tracks and names are registered at construction; recording methods are
/// allocation-free.
pub struct PipelineTrace {
    rec: Arc<TraceRecorder>,
    read: TrackId,
    lanes: Vec<TrackId>,
    posterior: TrackId,
    output: TrackId,
    n_read: NameId,
    n_stall_in: NameId,
    n_stall_out: NameId,
    n_window: NameId,
    n_steal: NameId,
    n_posterior: NameId,
    n_output: NameId,
}

/// Thread label of device lane `i` in the pipeline process.
fn lane_thread(i: usize) -> String {
    format!("device lane {i}")
}

impl PipelineTrace {
    /// Register the pipeline-process tracks on `rec` for a run with
    /// `num_devices` device lanes.
    pub fn new(rec: &Arc<TraceRecorder>, num_devices: usize) -> Self {
        PipelineTrace {
            read: rec.register_track("pipeline", "read_site", TrackKind::Spans),
            lanes: (0..num_devices.max(1))
                .map(|i| rec.register_track("pipeline", &lane_thread(i), TrackKind::Spans))
                .collect(),
            posterior: rec.register_track("pipeline", "posterior", TrackKind::Spans),
            output: rec.register_track("pipeline", "output", TrackKind::Spans),
            n_read: rec.intern("read_site"),
            n_stall_in: rec.intern("stall_in"),
            n_stall_out: rec.intern("stall_out"),
            n_window: rec.intern("window"),
            n_steal: rec.intern("steal"),
            n_posterior: rec.intern("posterior"),
            n_output: rec.intern("output"),
            rec: Arc::clone(rec),
        }
    }

    /// Host wall-clock seconds since the recorder's epoch (span `ts`
    /// values for every pipeline track).
    pub fn now(&self) -> f64 {
        self.rec.now()
    }

    /// Producer busy span (decompression or one window's `read_site`).
    pub fn read_span(&self, ts: f64, dur: f64) {
        self.rec
            .span(self.read, self.n_read, ts, dur, SpanArgs::None);
    }

    /// Producer blocked on downstream channel capacity.
    pub fn read_stall_out(&self, ts: f64, dur: f64) {
        self.rec
            .span(self.read, self.n_stall_out, ts, dur, SpanArgs::None);
    }

    /// Device lane `lane` busy on window `window`.
    pub fn lane_window(&self, lane: usize, ts: f64, dur: f64, window: u64) {
        self.rec.span(
            self.lanes[lane],
            self.n_window,
            ts,
            dur,
            SpanArgs::Window { index: window },
        );
    }

    /// Device lane blocked waiting for a window.
    pub fn lane_stall_in(&self, lane: usize, ts: f64, dur: f64) {
        self.rec
            .span(self.lanes[lane], self.n_stall_in, ts, dur, SpanArgs::None);
    }

    /// Device lane blocked handing a scored window downstream.
    pub fn lane_stall_out(&self, lane: usize, ts: f64, dur: f64) {
        self.rec
            .span(self.lanes[lane], self.n_stall_out, ts, dur, SpanArgs::None);
    }

    /// Lane processed a window off its round-robin home device.
    pub fn lane_steal(&self, lane: usize, ts: f64) {
        self.rec.instant(self.lanes[lane], self.n_steal, ts);
    }

    /// Posterior busy span.
    pub fn posterior_span(&self, ts: f64, dur: f64) {
        self.rec
            .span(self.posterior, self.n_posterior, ts, dur, SpanArgs::None);
    }

    /// Posterior blocked on its input channel.
    pub fn posterior_stall_in(&self, ts: f64, dur: f64) {
        self.rec
            .span(self.posterior, self.n_stall_in, ts, dur, SpanArgs::None);
    }

    /// Posterior blocked on the output channel.
    pub fn posterior_stall_out(&self, ts: f64, dur: f64) {
        self.rec
            .span(self.posterior, self.n_stall_out, ts, dur, SpanArgs::None);
    }

    /// Output busy span (reassembly + compression + serialization).
    pub fn output_span(&self, ts: f64, dur: f64) {
        self.rec
            .span(self.output, self.n_output, ts, dur, SpanArgs::None);
    }

    /// Output blocked waiting for called windows.
    pub fn output_stall_in(&self, ts: f64, dur: f64) {
        self.rec
            .span(self.output, self.n_stall_in, ts, dur, SpanArgs::None);
    }

    /// Cross-check this trace against the run's [`OverlapStats`] (see
    /// [`verify_overlap_consistency`]).
    pub fn verify(&self, overlap: &OverlapStats) -> Result<(), String> {
        verify_overlap_consistency(&self.rec.snapshot(), overlap)
    }
}

/// Absolute tolerance for busy/stall reconciliation. Spans carry the
/// identical `f64` values the stage accumulators add, so per-track sums in
/// record order reproduce the accumulator bit-for-bit; the serial loop's
/// device lane regroups four component sums per window, which this bound
/// covers with orders of magnitude to spare.
const CONSISTENCY_TOL: f64 = 1e-9;

/// Verify that `OverlapStats` busy/stall totals equal the summed durations
/// of the corresponding pipeline-trace spans — per stage and per device
/// lane — and that steal/window counts match. Catches accounting drift
/// between the two systems (the satellite invariant of the tracing
/// subsystem). Returns `Ok` vacuously when the ring dropped events, since
/// span sums are then incomplete by construction.
pub fn verify_overlap_consistency(
    snap: &TraceSnapshot,
    overlap: &OverlapStats,
) -> Result<(), String> {
    if snap.dropped > 0 {
        return Ok(()); // ring overflowed: span sums are lower bounds only
    }
    let track = |thread: &str| -> Result<TrackId, String> {
        snap.tracks
            .iter()
            .position(|t| t.process == "pipeline" && t.thread == thread)
            .map(|i| TrackId(i as u32))
            .ok_or_else(|| format!("pipeline trace has no {thread:?} track"))
    };
    let check = |what: &str, stats: f64, spans: f64| -> Result<(), String> {
        if (stats - spans).abs() > CONSISTENCY_TOL {
            return Err(format!(
                "{what}: OverlapStats has {stats} s but trace spans sum to {spans} s"
            ));
        }
        Ok(())
    };

    let read = track("read_site")?;
    check(
        "read.busy",
        overlap.read.busy,
        snap.sum_span_durations(read, "read_site"),
    )?;
    check(
        "read.stall_out",
        overlap.read.stall_out,
        snap.sum_span_durations(read, "stall_out"),
    )?;

    for (i, lane) in overlap.devices.iter().enumerate() {
        let t = track(&lane_thread(i))?;
        check(
            &format!("lane {i} busy"),
            lane.stage.busy,
            snap.sum_span_durations(t, "window"),
        )?;
        check(
            &format!("lane {i} stall_in"),
            lane.stage.stall_in,
            snap.sum_span_durations(t, "stall_in"),
        )?;
        check(
            &format!("lane {i} stall_out"),
            lane.stage.stall_out,
            snap.sum_span_durations(t, "stall_out"),
        )?;
        let windows = snap.count_events(t, "window") as u64;
        if windows != lane.windows {
            return Err(format!(
                "lane {i}: {} window spans vs {} windows in OverlapStats",
                windows, lane.windows
            ));
        }
        let steals = snap.count_events(t, "steal") as u64;
        if steals != lane.steals {
            return Err(format!(
                "lane {i}: {} steal events vs {} steals in OverlapStats",
                steals, lane.steals
            ));
        }
    }

    let post = track("posterior")?;
    check(
        "posterior.busy",
        overlap.posterior.busy,
        snap.sum_span_durations(post, "posterior"),
    )?;
    check(
        "posterior.stall_in",
        overlap.posterior.stall_in,
        snap.sum_span_durations(post, "stall_in"),
    )?;
    check(
        "posterior.stall_out",
        overlap.posterior.stall_out,
        snap.sum_span_durations(post, "stall_out"),
    )?;

    let out = track("output")?;
    check(
        "output.busy",
        overlap.output.busy,
        snap.sum_span_durations(out, "output"),
    )?;
    check(
        "output.stall_in",
        overlap.output.stall_in,
        snap.sum_span_durations(out, "stall_in"),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demux_sample_major_recovers_per_sample_runs() {
        // 2 samples × 3 windows, sample-major.
        let items = vec!["s0w0", "s0w1", "s0w2", "s1w0", "s1w1", "s1w2"];
        let per = demux_sample_major(items, 2);
        assert_eq!(per[0], vec!["s0w0", "s0w1", "s0w2"]);
        assert_eq!(per[1], vec!["s1w0", "s1w1", "s1w2"]);
        // One sample is the identity.
        assert_eq!(demux_sample_major(vec![1, 2, 3], 1), vec![vec![1, 2, 3]]);
        // Empty batch demuxes to empty runs.
        assert_eq!(
            demux_sample_major(Vec::<u8>::new(), 3),
            vec![vec![], vec![], Vec::<u8>::new()]
        );
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn demux_rejects_ragged_batches() {
        let _ = demux_sample_major(vec![1, 2, 3], 2);
    }

    #[test]
    fn in_order_input_passes_through() {
        let mut r = OrderedReassembler::new();
        for i in 0..5 {
            let ready = r.push(i, i * 10);
            assert_eq!(ready, vec![i * 10]);
        }
        assert!(r.is_drained());
        assert_eq!(r.next_index(), 5);
    }

    #[test]
    fn out_of_order_input_is_buffered_until_ready() {
        let mut r = OrderedReassembler::new();
        assert!(r.push(2, "c").is_empty());
        assert!(r.push(1, "b").is_empty());
        assert_eq!(r.pending(), 2);
        assert_eq!(r.push(0, "a"), vec!["a", "b", "c"]);
        assert!(r.is_drained());
        assert_eq!(r.push(4, "e"), Vec::<&str>::new());
        assert_eq!(r.push(3, "d"), vec!["d", "e"]);
    }

    #[test]
    #[should_panic(expected = "reassembled twice")]
    fn duplicate_index_panics() {
        let mut r = OrderedReassembler::new();
        let _ = r.push(1, ());
        let _ = r.push(1, ());
    }

    #[test]
    #[should_panic(expected = "reassembled twice")]
    fn already_emitted_index_panics() {
        let mut r = OrderedReassembler::new();
        let _ = r.push(0, ());
        let _ = r.offer(0, ());
    }

    #[test]
    fn offer_fast_path_and_pop_ready_drain() {
        let mut r = OrderedReassembler::new();
        // In-order offers hand the item straight back.
        assert_eq!(r.offer(0, "a"), Some("a"));
        assert_eq!(r.pop_ready(), None);
        // Out-of-order offers buffer until the gap closes.
        assert_eq!(r.offer(2, "c"), None);
        assert_eq!(r.offer(3, "d"), None);
        assert_eq!(r.pop_ready(), None);
        assert_eq!(r.offer(1, "b"), Some("b"));
        assert_eq!(r.pop_ready(), Some("c"));
        assert_eq!(r.pop_ready(), Some("d"));
        assert_eq!(r.pop_ready(), None);
        assert!(r.is_drained());
        assert_eq!(r.next_index(), 4);
    }

    /// A bounded channel between a fast producer and a reordering consumer
    /// must neither deadlock nor emit out of order — the exact topology the
    /// streaming executor's output stage uses.
    #[test]
    fn bounded_channel_reassembly_is_ordered_under_stall() {
        use crossbeam::channel::bounded;
        let (tx, rx) = bounded::<(usize, u32)>(2);
        let producer = std::thread::spawn(move || {
            // Emit with a scrambled order inside each group of three; the
            // bounded channel forces the producer to stall on a full
            // buffer while the consumer is busy reassembling.
            for group in 0u32..40 {
                let base = (group * 3) as usize;
                for off in [2usize, 0, 1] {
                    tx.send((base + off, (base + off) as u32)).unwrap();
                }
            }
        });
        let mut r = OrderedReassembler::new();
        let mut emitted = Vec::new();
        for (idx, v) in rx.iter() {
            emitted.extend(r.push(idx, v));
            if emitted.len() < 6 {
                // Hold the consumer back long enough for the channel to fill.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        producer.join().unwrap();
        assert!(r.is_drained());
        assert_eq!(emitted, (0u32..120).collect::<Vec<_>>());
    }

    #[test]
    fn consistency_verifier_accepts_matching_accounting() {
        let rec = Arc::new(TraceRecorder::new(256));
        let pt = PipelineTrace::new(&rec, 2);
        pt.read_span(0.0, 1.5);
        pt.read_stall_out(1.5, 0.25);
        pt.lane_stall_in(0, 0.0, 0.1);
        pt.lane_window(0, 0.1, 2.0, 0);
        pt.lane_window(1, 0.0, 1.0, 1);
        pt.lane_steal(1, 0.0);
        pt.lane_stall_out(1, 1.0, 0.5);
        pt.posterior_span(2.0, 0.75);
        pt.posterior_stall_in(0.0, 2.0);
        pt.output_span(3.0, 0.5);
        pt.output_stall_in(0.0, 3.0);
        let overlap = OverlapStats {
            depth: 2,
            read: StageStats {
                busy: 1.5,
                stall_out: 0.25,
                ..Default::default()
            },
            device: StageStats {
                busy: 3.0,
                stall_in: 0.1,
                stall_out: 0.5,
            },
            devices: vec![
                DeviceLaneStats {
                    stage: StageStats {
                        busy: 2.0,
                        stall_in: 0.1,
                        ..Default::default()
                    },
                    windows: 1,
                    steals: 0,
                },
                DeviceLaneStats {
                    stage: StageStats {
                        busy: 1.0,
                        stall_out: 0.5,
                        ..Default::default()
                    },
                    windows: 1,
                    steals: 1,
                },
            ],
            posterior: StageStats {
                busy: 0.75,
                stall_in: 2.0,
                ..Default::default()
            },
            output: StageStats {
                busy: 0.5,
                stall_in: 3.0,
                ..Default::default()
            },
            wall: 3.5,
        };
        pt.verify(&overlap)
            .expect("matching accounting must verify");

        // Drift in any lane total must be caught.
        let mut drifted = overlap.clone();
        drifted.devices[0].stage.busy += 0.5;
        let err = pt.verify(&drifted).unwrap_err();
        assert!(err.contains("lane 0 busy"), "unexpected error: {err}");

        // A missing steal event must be caught too.
        let mut drifted = overlap;
        drifted.devices[1].steals = 2;
        assert!(pt.verify(&drifted).unwrap_err().contains("steal"));
    }

    #[test]
    fn consistency_verifier_is_vacuous_after_ring_overflow() {
        let rec = Arc::new(TraceRecorder::new(2));
        let pt = PipelineTrace::new(&rec, 1);
        for _ in 0..8 {
            pt.read_span(0.0, 1.0);
        }
        assert!(rec.dropped() > 0);
        // Totals that cannot possibly match the surviving spans still pass.
        let overlap = OverlapStats {
            devices: vec![DeviceLaneStats::default()],
            ..Default::default()
        };
        pt.verify(&overlap)
            .expect("dropped ring must not fail verification");
    }

    #[test]
    fn overlap_stats_report_achieved_depth() {
        let s = OverlapStats {
            depth: 2,
            read: StageStats {
                busy: 1.0,
                ..Default::default()
            },
            device: StageStats {
                busy: 2.0,
                stall_in: 0.5,
                stall_out: 0.25,
            },
            posterior: StageStats {
                busy: 0.5,
                ..Default::default()
            },
            output: StageStats {
                busy: 0.5,
                ..Default::default()
            },
            wall: 2.5,
            ..Default::default()
        };
        assert!((s.busy_total() - 4.0).abs() < 1e-12);
        assert!((s.achieved_depth() - 1.6).abs() < 1e-12);
        assert!((s.device.total() - 2.75).abs() < 1e-12);
        assert_eq!(OverlapStats::default().achieved_depth(), 0.0);
    }
}
