//! # gsnp-core — the GSNP SNP-detection system (Lu et al., ICPP 2011)
//!
//! GSNP provides the same functionality as the CPU-based SOAPsnp caller —
//! Bayesian consensus genotyping of second-generation short-read
//! alignments — restructured around four ideas (§I):
//!
//! 1. a **sparse representation** of the per-site aligned-base matrix
//!    ([`baseword`], [`counting`]),
//! 2. a **multipass sorting network** to restore canonical order
//!    (the `sortnet` crate, driven from [`likelihood`]),
//! 3. a **precomputed score table** replacing repeated logarithms and
//!    halving random memory traffic ([`tables`]), and
//! 4. **customized output compression** (the `compress` crate, driven
//!    from [`pipeline`]).
//!
//! The Bayesian model itself ([`model`]) is shared with the `soapsnp`
//! baseline crate so that the two pipelines differ *only* in data
//! structures and execution strategy; the paper's §IV-G consistency
//! requirement (bit-identical results) is enforced by tests.
//!
//! Device kernels run on the `gpu-sim` simulated GPU; see that crate for
//! the substitution rationale.

pub mod accuracy;
pub mod arena;
pub mod baseword;
pub mod cohort;
pub mod counting;
pub mod journal;
pub mod likelihood;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod progress;
pub mod serve;
pub mod stream;
pub mod tables;

pub use arena::{ArenaPool, ArenaPoolStats, WindowArena};
pub use cohort::{
    BadSiteList, CohortCallConfig, CohortOutput, CohortPipeline, QualityGates, SampleOutput,
    SampleReads,
};
pub use journal::Journal;
pub use metrics::call_metrics;
pub use model::{ModelParams, SiteSummary};
pub use pipeline::{ComponentTimes, GsnpConfig, GsnpCpuPipeline, GsnpOutput, GsnpPipeline};
pub use progress::{LaneProgress, LatencyHists, ProgressSnapshot, ProgressTracker};
pub use serve::StatsServer;
pub use stream::{
    verify_overlap_consistency, OrderedReassembler, OverlapStats, PipelineTrace, StageStats,
};
pub use tables::{LogTable, NewPMatrix, PMatrix, SharedTables};
