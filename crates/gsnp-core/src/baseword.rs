//! The sparse aligned-base representation (`base_word`, §IV-B).
//!
//! Each aligned-base *occurrence* at a site is one 32-bit word packing the
//! four attributes the likelihood model consumes:
//!
//! ```text
//!  bits 16..15   14..9     8..1     0
//!      base   score(inv)  coord  strand
//! ```
//!
//! **Score inversion.** Algorithm 1 of the paper iterates scores in
//! *descending* order (`q_max − q_min → 0`) so that high-quality evidence
//! at a coordinate is processed before duplicates are penalized, while a
//! plain ascending sort of the packed word would order scores ascending.
//! We therefore store the score field as `QUAL_MAX − score`, making the
//! canonical iteration order — base ↑, score ↓, coord ↑, strand ↑ —
//! exactly the ascending `u32` order. This refinement (implicit in the
//! paper) is what lets "sort then scan" (Algorithm 4) reproduce the dense
//! scan bit for bit (§IV-G).

/// Maximum quality score representable in the 6-bit field.
pub const QUAL_MAX: u8 = 63;
/// Maximum coordinate (read length) representable in the 8-bit field.
pub const COORD_MAX: u8 = 255;

/// Pack one occurrence. All arguments are range-checked in debug builds.
#[inline(always)]
pub fn pack(base: u8, score: u8, coord: u8, strand: u8) -> u32 {
    debug_assert!(base < 4, "base code out of range");
    debug_assert!(score <= QUAL_MAX, "score out of range");
    debug_assert!(strand < 2, "strand out of range");
    let inv_score = QUAL_MAX - score;
    (u32::from(base) << 15)
        | (u32::from(inv_score) << 9)
        | (u32::from(coord) << 1)
        | u32::from(strand)
}

/// Unpack a word into `(base, score, coord, strand)`.
#[inline(always)]
pub fn unpack(word: u32) -> (u8, u8, u8, u8) {
    let strand = (word & 1) as u8;
    let coord = ((word >> 1) & 0xFF) as u8;
    let inv_score = ((word >> 9) & 0x3F) as u8;
    let base = ((word >> 15) & 0x3) as u8;
    (base, QUAL_MAX - inv_score, coord, strand)
}

/// The canonical comparison key used by the dense scan, for checking that
/// sorted `base_word` order equals canonical order.
#[inline]
pub fn canonical_key(base: u8, score: u8, coord: u8, strand: u8) -> u32 {
    pack(base, score, coord, strand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_identity() {
        for base in 0..4u8 {
            for score in [0u8, 1, 31, 62, 63] {
                for coord in [0u8, 1, 99, 255] {
                    for strand in 0..2u8 {
                        let w = pack(base, score, coord, strand);
                        assert_eq!(unpack(w), (base, score, coord, strand));
                    }
                }
            }
        }
    }

    #[test]
    fn word_fits_17_bits() {
        let w = pack(3, 0, 255, 1);
        assert!(w < (1 << 17));
    }

    #[test]
    fn ascending_word_order_is_canonical_order() {
        // Canonical: base asc, then score DESC, then coord asc, then strand.
        let a = pack(1, 50, 10, 0);
        let b = pack(1, 40, 3, 1); // lower score → later despite lower coord
        assert!(a < b, "higher score must sort first within a base");

        let c = pack(0, 0, 255, 1); // base 0, worst everything
        let d = pack(1, 63, 0, 0); // base 1, best everything
        assert!(c < d, "base is the major key");

        let e = pack(2, 30, 5, 0);
        let f = pack(2, 30, 6, 0);
        assert!(e < f, "coord ascending within equal base+score");

        let g = pack(2, 30, 5, 0);
        let h = pack(2, 30, 5, 1);
        assert!(g < h, "strand is the minor key");
    }

    proptest! {
        #[test]
        fn roundtrip(base in 0u8..4, score in 0u8..=63, coord: u8, strand in 0u8..2) {
            prop_assert_eq!(unpack(pack(base, score, coord, strand)),
                            (base, score, coord, strand));
        }

        #[test]
        fn order_matches_tuple_order(
            a in (0u8..4, 0u8..=63, any::<u8>(), 0u8..2),
            b in (0u8..4, 0u8..=63, any::<u8>(), 0u8..2),
        ) {
            let wa = pack(a.0, a.1, a.2, a.3);
            let wb = pack(b.0, b.1, b.2, b.3);
            // Canonical tuple: (base, QUAL_MAX-score, coord, strand).
            let ta = (a.0, QUAL_MAX - a.1, a.2, a.3);
            let tb = (b.0, QUAL_MAX - b.1, b.2, b.3);
            prop_assert_eq!(wa.cmp(&wb), ta.cmp(&tb));
        }
    }
}
