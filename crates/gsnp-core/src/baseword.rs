//! The sparse aligned-base representation (`base_word`, §IV-B).
//!
//! Each aligned-base *occurrence* at a site is one 32-bit word packing the
//! five attributes the likelihood and counting models consume:
//!
//! ```text
//!  bits 17..16   15..10     9..2      1      0
//!      base   score(inv)  coord   strand  uniq
//! ```
//!
//! **Score inversion.** Algorithm 1 of the paper iterates scores in
//! *descending* order (`q_max − q_min → 0`) so that high-quality evidence
//! at a coordinate is processed before duplicates are penalized, while a
//! plain ascending sort of the packed word would order scores ascending.
//! We therefore store the score field as `QUAL_MAX − score`, making the
//! canonical iteration order — base ↑, score ↓, coord ↑, strand ↑ —
//! exactly the ascending `u32` order. This refinement (implicit in the
//! paper) is what lets "sort then scan" (Algorithm 4) reproduce the dense
//! scan bit for bit (§IV-G).
//!
//! **Uniqueness bit.** The lowest bit carries whether the read aligned
//! uniquely. It sits *below* every model-relevant key, so it only breaks
//! ties between otherwise-identical words — sorted order, and therefore
//! the likelihood scan, is unchanged — while letting the fused
//! counting+likelihood kernel derive the `count_uniq` summary column from
//! the same sorted scan that computes the likelihoods, with no second
//! traversal of the observations.

/// Maximum quality score representable in the 6-bit field.
pub const QUAL_MAX: u8 = 63;
/// Maximum coordinate (read length) representable in the 8-bit field.
pub const COORD_MAX: u8 = 255;

/// Pack one occurrence. All arguments are range-checked in debug builds.
#[inline(always)]
pub fn pack(base: u8, score: u8, coord: u8, strand: u8, uniq: bool) -> u32 {
    debug_assert!(base < 4, "base code out of range");
    debug_assert!(score <= QUAL_MAX, "score out of range");
    debug_assert!(strand < 2, "strand out of range");
    let inv_score = QUAL_MAX - score;
    (u32::from(base) << 16)
        | (u32::from(inv_score) << 10)
        | (u32::from(coord) << 2)
        | (u32::from(strand) << 1)
        | u32::from(uniq)
}

/// Unpack a word into `(base, score, coord, strand, uniq)`.
#[inline(always)]
pub fn unpack(word: u32) -> (u8, u8, u8, u8, bool) {
    let uniq = (word & 1) != 0;
    let strand = ((word >> 1) & 1) as u8;
    let coord = ((word >> 2) & 0xFF) as u8;
    let inv_score = ((word >> 10) & 0x3F) as u8;
    let base = ((word >> 16) & 0x3) as u8;
    (base, QUAL_MAX - inv_score, coord, strand, uniq)
}

/// The canonical comparison key used by the dense scan, for checking that
/// sorted `base_word` order equals canonical order.
#[inline]
pub fn canonical_key(base: u8, score: u8, coord: u8, strand: u8, uniq: bool) -> u32 {
    pack(base, score, coord, strand, uniq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_identity() {
        for base in 0..4u8 {
            for score in [0u8, 1, 31, 62, 63] {
                for coord in [0u8, 1, 99, 255] {
                    for strand in 0..2u8 {
                        for uniq in [false, true] {
                            let w = pack(base, score, coord, strand, uniq);
                            assert_eq!(unpack(w), (base, score, coord, strand, uniq));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn word_fits_18_bits() {
        let w = pack(3, 0, 255, 1, true);
        assert!(w < (1 << 18));
    }

    #[test]
    fn ascending_word_order_is_canonical_order() {
        // Canonical: base asc, then score DESC, then coord asc, then strand.
        let a = pack(1, 50, 10, 0, false);
        let b = pack(1, 40, 3, 1, false); // lower score → later despite lower coord
        assert!(a < b, "higher score must sort first within a base");

        let c = pack(0, 0, 255, 1, false); // base 0, worst everything
        let d = pack(1, 63, 0, 0, false); // base 1, best everything
        assert!(c < d, "base is the major key");

        let e = pack(2, 30, 5, 0, false);
        let f = pack(2, 30, 6, 0, false);
        assert!(e < f, "coord ascending within equal base+score");

        let g = pack(2, 30, 5, 0, false);
        let h = pack(2, 30, 5, 1, false);
        assert!(g < h, "strand is the minor key");

        // uniq breaks ties only among otherwise-identical words.
        let i = pack(2, 30, 5, 1, false);
        let j = pack(2, 30, 5, 1, true);
        assert!(i < j, "uniq is below every model key");
    }

    proptest! {
        #[test]
        fn roundtrip(
            base in 0u8..4, score in 0u8..=63, coord: u8, strand in 0u8..2,
            uniq: bool,
        ) {
            prop_assert_eq!(unpack(pack(base, score, coord, strand, uniq)),
                            (base, score, coord, strand, uniq));
        }

        #[test]
        fn order_matches_tuple_order(
            a in (0u8..4, 0u8..=63, any::<u8>(), 0u8..2, any::<bool>()),
            b in (0u8..4, 0u8..=63, any::<u8>(), 0u8..2, any::<bool>()),
        ) {
            let wa = pack(a.0, a.1, a.2, a.3, a.4);
            let wb = pack(b.0, b.1, b.2, b.3, b.4);
            // Canonical tuple: (base, QUAL_MAX-score, coord, strand, uniq).
            let ta = (a.0, QUAL_MAX - a.1, a.2, a.3, a.4);
            let tb = (b.0, QUAL_MAX - b.1, b.2, b.3, b.4);
            prop_assert_eq!(wa.cmp(&wb), ta.cmp(&tb));
        }
    }
}
