//! Live run introspection: latency histograms and the heartbeat tracker.
//!
//! The streaming pipeline (see [`crate::pipeline`]) already times every
//! batch, stage, and queue wait to assemble its end-of-run
//! [`crate::stream::PipelineTrace`]. This module records those same
//! durations into fixed-size log-bucketed [`Histogram`]s and a set of
//! atomic progress counters, so a long run can be observed *while it
//! executes*: a `--progress` stderr heartbeat, the `/metrics`,
//! `/health`, and `/progress` HTTP endpoints (see [`crate::serve`]), and
//! the post-run quantile table in `gsnp profile`.
//!
//! One [`ProgressTracker`] exists per run — the pipeline creates its own
//! when the caller did not hand one in via
//! [`crate::GsnpConfig::progress`] — so there is a single recording path
//! whether or not anything is watching. Recording is a few atomic adds
//! plus one short mutex-protected fold per *batch* (never per site), and
//! the histograms themselves are fixed arrays, so the steady state stays
//! allocation-free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gpu_sim::trace::MetricsSnapshot;
use gpu_sim::{Histogram, HistogramDigest, SharedHistogram};
use parking_lot::Mutex;

/// Window-loop stage names, in pipeline order. Indexes into the
/// `stage_busy` / `stage_stall` arrays of [`LatencyHists`].
pub const STAGE_NAMES: [&str; 4] = ["read", "device", "posterior", "output"];

/// Stage index: reference/read ingestion (producer).
pub const STAGE_READ: usize = 0;
/// Stage index: device workers (count + likelihood kernels).
pub const STAGE_DEVICE: usize = 1;
/// Stage index: posterior genotyping.
pub const STAGE_POSTERIOR: usize = 2;
/// Stage index: reassembly + compressed output.
pub const STAGE_OUTPUT: usize = 3;

/// The full set of latency histograms one run accumulates.
#[derive(Debug, Clone, Default)]
pub struct LatencyHists {
    /// Per-window wall time (a batch's device busy interval sliced evenly
    /// across its windows, matching the trace's per-window spans).
    pub window: Histogram,
    /// Per-stage busy interval durations, indexed by `STAGE_*`.
    pub stage_busy: [Histogram; 4],
    /// Per-stage stall (blocked on channel) durations, indexed by
    /// `STAGE_*`. For the device stage this is the queue wait.
    pub stage_stall: [Histogram; 4],
    /// Time each dispatched batch waited in the device input queue.
    pub queue_wait: Histogram,
    /// Per-kernel-launch wall time, merged across kernels and devices
    /// (the per-kernel split lives in [`gpu_sim::KernelTally`]).
    pub kernel_wall: Histogram,
}

impl LatencyHists {
    /// Fold `other` in (bucket-wise; associative and commutative).
    pub fn merge(&mut self, other: &LatencyHists) {
        self.window.merge(&other.window);
        for (a, b) in self.stage_busy.iter_mut().zip(&other.stage_busy) {
            a.merge(b);
        }
        for (a, b) in self.stage_stall.iter_mut().zip(&other.stage_stall) {
            a.merge(b);
        }
        self.queue_wait.merge(&other.queue_wait);
        self.kernel_wall.merge(&other.kernel_wall);
    }

    /// `(name, digest)` rows for every non-empty histogram, in display
    /// order — shared by `gsnp profile`, the run journal, and
    /// `gsnp report`.
    pub fn digest_rows(&self) -> Vec<(String, HistogramDigest)> {
        let mut rows = Vec::new();
        if !self.window.is_empty() {
            rows.push(("window".to_string(), self.window.digest()));
        }
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            if !self.stage_busy[i].is_empty() {
                rows.push((format!("stage/{name}/busy"), self.stage_busy[i].digest()));
            }
            if !self.stage_stall[i].is_empty() {
                rows.push((format!("stage/{name}/stall"), self.stage_stall[i].digest()));
            }
        }
        if !self.queue_wait.is_empty() {
            rows.push(("queue_wait".to_string(), self.queue_wait.digest()));
        }
        if !self.kernel_wall.is_empty() {
            rows.push(("kernel".to_string(), self.kernel_wall.digest()));
        }
        rows
    }

    /// Push every histogram into a [`MetricsSnapshot`] as classic
    /// Prometheus histogram families (`gsnp_*_seconds_bucket/_sum/_count`).
    pub fn push_metrics(&self, m: &mut MetricsSnapshot) {
        m.push_histogram(
            "gsnp_window_seconds",
            "Per-window wall time",
            &[],
            &self.window,
        );
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            m.push_histogram(
                "gsnp_stage_busy_seconds",
                "Per-stage busy interval durations",
                &[("stage", name)],
                &self.stage_busy[i],
            );
            m.push_histogram(
                "gsnp_stage_stall_seconds",
                "Per-stage stall (blocked on channel) durations",
                &[("stage", name)],
                &self.stage_stall[i],
            );
        }
        m.push_histogram(
            "gsnp_queue_wait_seconds",
            "Device input queue wait per dispatched batch",
            &[],
            &self.queue_wait,
        );
        m.push_histogram(
            "gsnp_kernel_wall_seconds",
            "Per-kernel-launch wall time across all devices",
            &[],
            &self.kernel_wall,
        );
    }
}

/// Per-device-lane live counters.
#[derive(Debug, Clone, Copy, Default)]
struct LaneCounters {
    windows: u64,
    steals: u64,
    busy_seconds: f64,
}

/// State behind the tracker's single mutex: per-lane counters and the
/// latency histograms (minus kernel wall, which lives in the shared
/// histogram handed to the device group).
#[derive(Debug, Default)]
struct Live {
    lanes: Vec<LaneCounters>,
    hists: LatencyHists,
}

/// Atomic heartbeat + latency accumulator for one pipeline run.
///
/// Cheap to sample from any thread: [`ProgressTracker::progress`] reads
/// the atomics and takes the lane lock briefly, so the `/progress`
/// endpoint and the stderr heartbeat never stall the workers.
#[derive(Debug)]
pub struct ProgressTracker {
    start: Instant,
    windows_total: AtomicU64,
    windows_done: AtomicU64,
    sites_done: AtomicU64,
    samples: AtomicU64,
    done: AtomicBool,
    live: Mutex<Live>,
    kernel_wall: Arc<SharedHistogram>,
}

impl Default for ProgressTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressTracker {
    /// A fresh tracker with the run clock started now.
    pub fn new() -> Self {
        ProgressTracker {
            start: Instant::now(),
            windows_total: AtomicU64::new(0),
            windows_done: AtomicU64::new(0),
            sites_done: AtomicU64::new(0),
            samples: AtomicU64::new(1),
            done: AtomicBool::new(false),
            live: Mutex::new(Live::default()),
            kernel_wall: Arc::new(SharedHistogram::new()),
        }
    }

    /// The shared per-launch wall histogram to attach to the device
    /// group via [`gpu_sim::DeviceGroup::with_launch_hist`].
    pub fn kernel_hist(&self) -> Arc<SharedHistogram> {
        Arc::clone(&self.kernel_wall)
    }

    /// Declare the expected total window count (ETA denominator).
    /// Cohort runs multiply by the sample count.
    pub fn set_total_windows(&self, n: u64) {
        self.windows_total.store(n, Ordering::Relaxed);
    }

    /// Declare the number of samples being called (1 for single-sample).
    pub fn set_samples(&self, n: u64) {
        self.samples.store(n.max(1), Ordering::Relaxed);
    }

    /// Size the per-lane counter table (one lane per device worker).
    pub fn begin_lanes(&self, n: usize) {
        let mut live = self.live.lock();
        if live.lanes.len() < n {
            live.lanes.resize(n, LaneCounters::default());
        }
    }

    /// Record one device batch: `k` windows covering `sites` sites,
    /// processed in `busy_seconds` of lane busy time. The per-window
    /// histogram gets `k` observations of the evenly-sliced duration,
    /// matching how the trace layer emits per-window spans.
    pub fn lane_batch(&self, lane: usize, k: u64, sites: u64, busy_seconds: f64) {
        self.windows_done.fetch_add(k, Ordering::Relaxed);
        self.sites_done.fetch_add(sites, Ordering::Relaxed);
        let mut live = self.live.lock();
        if lane >= live.lanes.len() {
            live.lanes.resize(lane + 1, LaneCounters::default());
        }
        live.lanes[lane].windows += k;
        live.lanes[lane].busy_seconds += busy_seconds;
        if k > 0 {
            live.hists.window.record_n(busy_seconds / k as f64, k);
        }
        live.hists.stage_busy[STAGE_DEVICE].record(busy_seconds);
    }

    /// Record a lane's wait on the device input queue.
    pub fn lane_wait(&self, lane: usize, wait_seconds: f64) {
        let mut live = self.live.lock();
        if lane >= live.lanes.len() {
            live.lanes.resize(lane + 1, LaneCounters::default());
        }
        live.hists.queue_wait.record(wait_seconds);
        live.hists.stage_stall[STAGE_DEVICE].record(wait_seconds);
    }

    /// Record that a lane stole `n` windows owned by another lane.
    pub fn lane_steal(&self, lane: usize, n: u64) {
        let mut live = self.live.lock();
        if lane >= live.lanes.len() {
            live.lanes.resize(lane + 1, LaneCounters::default());
        }
        live.lanes[lane].steals += n;
    }

    /// Record a busy interval for a non-device stage (`STAGE_READ`,
    /// `STAGE_POSTERIOR`, `STAGE_OUTPUT`).
    pub fn stage_busy(&self, stage: usize, seconds: f64) {
        self.live.lock().hists.stage_busy[stage].record(seconds);
    }

    /// Record a stall interval for a non-device stage.
    pub fn stage_stall(&self, stage: usize, seconds: f64) {
        self.live.lock().hists.stage_stall[stage].record(seconds);
    }

    /// Mark the run finished (flips `/health` and the heartbeat line to
    /// their terminal state).
    pub fn finish(&self) {
        self.done.store(true, Ordering::Relaxed);
    }

    /// True once [`ProgressTracker::finish`] has been called.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Relaxed)
    }

    /// Seconds since the tracker was created.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Snapshot the full latency histogram set (lane-local hists merged
    /// with the shared kernel-wall histogram).
    pub fn latency(&self) -> LatencyHists {
        let mut h = self.live.lock().hists.clone();
        h.kernel_wall.merge(&self.kernel_wall.snapshot());
        h
    }

    /// Sample the heartbeat counters.
    pub fn progress(&self) -> ProgressSnapshot {
        let elapsed = self.elapsed_seconds();
        let windows_done = self.windows_done.load(Ordering::Relaxed);
        let windows_total = self.windows_total.load(Ordering::Relaxed);
        let sites_done = self.sites_done.load(Ordering::Relaxed);
        let sites_per_sec = if elapsed > 0.0 {
            sites_done as f64 / elapsed
        } else {
            0.0
        };
        let eta_seconds = if windows_done > 0 && windows_total > windows_done {
            elapsed / windows_done as f64 * (windows_total - windows_done) as f64
        } else {
            0.0
        };
        let lanes = {
            let live = self.live.lock();
            live.lanes
                .iter()
                .map(|l| LaneProgress {
                    windows: l.windows,
                    steals: l.steals,
                    utilization: if elapsed > 0.0 {
                        (l.busy_seconds / elapsed).min(1.0)
                    } else {
                        0.0
                    },
                })
                .collect()
        };
        ProgressSnapshot {
            elapsed_seconds: elapsed,
            windows_done,
            windows_total,
            sites_done,
            samples: self.samples.load(Ordering::Relaxed),
            sites_per_sec,
            eta_seconds,
            done: self.is_done(),
            lanes,
        }
    }

    /// Build the live Prometheus exposition: progress gauges, per-lane
    /// series, latency histograms, and the build-info gauge.
    pub fn metrics(&self) -> MetricsSnapshot {
        let snap = self.progress();
        let mut m = MetricsSnapshot::default();
        push_build_info(&mut m);
        m.push(
            "gsnp_run_active",
            "1 while the window loop is executing, 0 once finished",
            gpu_sim::MetricKind::Gauge,
            &[],
            if snap.done { 0.0 } else { 1.0 },
        );
        m.push(
            "gsnp_progress_windows_total",
            "Expected window count for this run",
            gpu_sim::MetricKind::Gauge,
            &[],
            snap.windows_total as f64,
        );
        m.push(
            "gsnp_progress_windows_done_total",
            "Windows completed so far",
            gpu_sim::MetricKind::Counter,
            &[],
            snap.windows_done as f64,
        );
        m.push(
            "gsnp_progress_sites_total",
            "Sites processed so far",
            gpu_sim::MetricKind::Counter,
            &[],
            snap.sites_done as f64,
        );
        m.push(
            "gsnp_progress_sites_per_second",
            "Throughput since run start",
            gpu_sim::MetricKind::Gauge,
            &[],
            snap.sites_per_sec,
        );
        m.push(
            "gsnp_progress_eta_seconds",
            "Estimated seconds to completion (0 when unknown or done)",
            gpu_sim::MetricKind::Gauge,
            &[],
            snap.eta_seconds,
        );
        m.push(
            "gsnp_progress_elapsed_seconds",
            "Seconds since run start",
            gpu_sim::MetricKind::Gauge,
            &[],
            snap.elapsed_seconds,
        );
        for (i, lane) in snap.lanes.iter().enumerate() {
            let dev = i.to_string();
            m.push(
                "gsnp_lane_windows_total",
                "Windows completed per device lane",
                gpu_sim::MetricKind::Counter,
                &[("device", dev.as_str())],
                lane.windows as f64,
            );
            m.push(
                "gsnp_lane_steals_total",
                "Batches stolen from other lanes, per device lane",
                gpu_sim::MetricKind::Counter,
                &[("device", dev.as_str())],
                lane.steals as f64,
            );
            m.push(
                "gsnp_lane_utilization",
                "Fraction of wall time the lane spent busy",
                gpu_sim::MetricKind::Gauge,
                &[("device", dev.as_str())],
                lane.utilization,
            );
        }
        self.latency().push_metrics(&mut m);
        m
    }
}

/// Push the `gsnp_build_info` gauge (value 1, version/profile labels) —
/// shared by the live endpoint and the end-of-run exposition so the
/// family appears exactly once in merged output.
pub fn push_build_info(m: &mut MetricsSnapshot) {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    m.push(
        "gsnp_build_info",
        "Build metadata (constant 1)",
        gpu_sim::MetricKind::Gauge,
        &[("version", env!("CARGO_PKG_VERSION")), ("profile", profile)],
        1.0,
    );
}

/// One lane's share of the heartbeat.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneProgress {
    /// Windows this lane completed.
    pub windows: u64,
    /// Batches this lane stole from other lanes.
    pub steals: u64,
    /// Fraction of run wall time the lane spent busy, clamped to 1.
    pub utilization: f64,
}

/// A point-in-time sample of the run's heartbeat counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Seconds since run start.
    pub elapsed_seconds: f64,
    /// Windows completed.
    pub windows_done: u64,
    /// Expected total windows (0 when unknown).
    pub windows_total: u64,
    /// Sites processed.
    pub sites_done: u64,
    /// Samples being called (1 for single-sample runs).
    pub samples: u64,
    /// Throughput since run start.
    pub sites_per_sec: f64,
    /// Estimated seconds to completion (0 when unknown or done).
    pub eta_seconds: f64,
    /// True once the run finished.
    pub done: bool,
    /// Per-device-lane counters.
    pub lanes: Vec<LaneProgress>,
}

impl ProgressSnapshot {
    /// The one-line stderr heartbeat rendering.
    pub fn render_line(&self) -> String {
        let pct = if self.windows_total > 0 {
            100.0 * self.windows_done as f64 / self.windows_total as f64
        } else {
            0.0
        };
        let mut line = format!(
            "progress: {}/{} windows ({:.1}%), {:.2} Msites/s, elapsed {:.1}s",
            self.windows_done,
            self.windows_total,
            pct,
            self.sites_per_sec / 1e6,
            self.elapsed_seconds,
        );
        if self.done {
            line.push_str(", done");
        } else if self.eta_seconds > 0.0 {
            line.push_str(&format!(", eta {:.1}s", self.eta_seconds));
        }
        if !self.lanes.is_empty() {
            let lanes: Vec<String> = self
                .lanes
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    format!(
                        "d{i} {}w/{}st {:.0}%",
                        l.windows,
                        l.steals,
                        l.utilization * 100.0
                    )
                })
                .collect();
            line.push_str(&format!(", lanes [{}]", lanes.join(" ")));
        }
        line
    }

    /// JSON object rendering for the `/progress` endpoint.
    pub fn to_json(&self) -> String {
        let lanes: Vec<String> = self
            .lanes
            .iter()
            .enumerate()
            .map(|(i, l)| {
                format!(
                    "{{\"device\":{i},\"windows\":{},\"steals\":{},\"utilization\":{:.4}}}",
                    l.windows, l.steals, l.utilization
                )
            })
            .collect();
        format!(
            "{{\"elapsed_seconds\":{:.3},\"windows_done\":{},\"windows_total\":{},\
             \"sites_done\":{},\"samples\":{},\"sites_per_sec\":{:.1},\
             \"eta_seconds\":{:.3},\"done\":{},\"lanes\":[{}]}}",
            self.elapsed_seconds,
            self.windows_done,
            self.windows_total,
            self.sites_done,
            self.samples,
            self.sites_per_sec,
            self.eta_seconds,
            self.done,
            lanes.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_and_eta() {
        let t = ProgressTracker::new();
        t.set_total_windows(10);
        t.begin_lanes(2);
        t.lane_batch(0, 4, 4000, 0.08);
        t.lane_batch(1, 2, 2000, 0.04);
        t.lane_steal(1, 1);
        t.lane_wait(0, 0.01);
        let p = t.progress();
        assert_eq!(p.windows_done, 6);
        assert_eq!(p.windows_total, 10);
        assert_eq!(p.sites_done, 6000);
        assert_eq!(p.lanes.len(), 2);
        assert_eq!(p.lanes[0].windows, 4);
        assert_eq!(p.lanes[1].steals, 1);
        assert!(p.eta_seconds > 0.0, "4 windows remain, eta must be set");
        assert!(!p.done);
        t.finish();
        assert!(t.progress().done);
    }

    #[test]
    fn lane_batch_slices_windows_evenly() {
        let t = ProgressTracker::new();
        t.lane_batch(0, 4, 400, 0.4);
        let h = t.latency();
        assert_eq!(h.window.count(), 4, "k windows, k observations");
        assert!((h.window.sum() - 0.4).abs() < 1e-12);
        assert_eq!(h.stage_busy[STAGE_DEVICE].count(), 1);
        assert_eq!(h.queue_wait.count(), 0);
    }

    #[test]
    fn kernel_hist_folds_into_latency() {
        let t = ProgressTracker::new();
        t.kernel_hist().record(0.002);
        t.kernel_hist().record(0.004);
        let h = t.latency();
        assert_eq!(h.kernel_wall.count(), 2);
        assert!((h.kernel_wall.max() - 0.004).abs() < 1e-12);
    }

    #[test]
    fn metrics_exposes_histogram_families_and_build_info() {
        let t = ProgressTracker::new();
        t.set_total_windows(8);
        t.lane_batch(0, 8, 8000, 0.1);
        t.finish();
        let text = t.metrics().render_text();
        assert!(text.contains("# TYPE gsnp_window_seconds histogram"));
        assert!(text.contains("gsnp_window_seconds_bucket"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("gsnp_build_info{"));
        assert!(text.contains("gsnp_run_active 0"));
        assert!(text.contains("gsnp_progress_windows_done_total 8"));
        // HELP/TYPE exactly once per family.
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let mut names: Vec<&str> = type_lines
            .iter()
            .map(|l| l.split(' ').nth(2).unwrap())
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate TYPE header in {text}");
    }

    #[test]
    fn snapshot_renders_line_and_json() {
        let t = ProgressTracker::new();
        t.set_total_windows(4);
        t.lane_batch(0, 2, 2000, 0.05);
        let p = t.progress();
        let line = p.render_line();
        assert!(line.starts_with("progress: 2/4 windows (50.0%)"), "{line}");
        let json = p.to_json();
        assert!(json.contains("\"windows_done\":2"));
        assert!(json.contains("\"lanes\":[{\"device\":0"));
        // The JSON must parse with the in-tree parser.
        let v = gpu_sim::parse_json(&json).expect("progress json parses");
        assert_eq!(
            v.get("windows_total").and_then(gpu_sim::Json::as_num),
            Some(4.0)
        );
    }
}
