//! The Bayesian consensus model shared by GSNP and the SOAPsnp baseline.
//!
//! Everything in this module is *definitional*: both pipelines call these
//! functions, so any comparison between them measures data structures and
//! execution strategy, never model drift — which is how the paper frames
//! its evaluation, and what makes the §IV-G bit-exactness claim testable.
//!
//! The model follows Li et al. (Genome Research 2009): for each site, the
//! likelihood of each of the ten unordered diploid genotypes is accumulated
//! from every aligned base, with the per-base error probability taken from
//! a recalibrated quality matrix ([`crate::tables::PMatrix`]) and a
//! dependency adjustment ([`adjust`]) that discounts stacked observations
//! at the same read coordinate and strand (PCR duplicates). Posteriors
//! combine the likelihoods with a genotype prior built from the reference
//! base, the transition/transversion bias, and known-SNP allele
//! frequencies.

use seqio::base::{iupac, Base, N_CODE};
use seqio::prior::KnownSnp;
use seqio::result::SnpRow;
use seqio::window::SiteObs;

use crate::tables::LogTable;

/// Number of unordered diploid genotypes over {A, C, G, T}.
pub const NUM_GENOTYPES: usize = 10;

/// The ten genotypes as `(allele1, allele2)` with `allele1 ≤ allele2`,
/// enumerated exactly as the paper's double loop (Algorithm 1 lines
/// 11–12) visits them.
pub const GENOTYPES: [(u8, u8); NUM_GENOTYPES] = [
    (0, 0),
    (0, 1),
    (0, 2),
    (0, 3),
    (1, 1),
    (1, 2),
    (1, 3),
    (2, 2),
    (2, 3),
    (3, 3),
];

/// Dense index of genotype `(a1, a2)` (requires `a1 ≤ a2`).
#[inline]
pub fn genotype_index(a1: u8, a2: u8) -> usize {
    debug_assert!(a1 <= a2 && a2 < 4);
    // Row offsets of the upper-triangular enumeration: 0, 4, 7, 9.
    const ROW: [usize; 4] = [0, 4, 7, 9];
    ROW[a1 as usize] + (a2 - a1) as usize
}

/// Tunable model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// Prior rate of heterozygous sites (human: ~1e-3).
    pub het_rate: f64,
    /// Prior rate of homozygous-alternate sites.
    pub hom_rate: f64,
    /// Transition:transversion prior ratio.
    pub titv_ratio: f64,
    /// Pseudo-observation weight in quality recalibration.
    pub pseudocount: f64,
    /// Expected sequencing depth, used for the copy-number column.
    pub expected_depth: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            het_rate: 1e-3,
            hom_rate: 5e-4,
            titv_ratio: 2.0,
            pseudocount: 10.0,
            expected_depth: 10.0,
        }
    }
}

/// The dependency quality adjustment (Algorithm 1 line 10).
///
/// `dep_count` is the number of observations (including this one) already
/// seen for the current base at the same `(strand, coord)` slot. The paper
/// specifies only the interface — inputs `(score, dep_count)` and that
/// "the only mathematical function in adjust is a base-10 logarithm on the
/// sequencing scores, each an integer between 0 and 64", computed through
/// a 64-entry [`LogTable`]. Our instantiation:
///
/// ```text
/// q_adj = max(0, score − round(10·log10(dep_count)))
/// ```
///
/// The first observation (`dep_count = 1`) passes through unchanged; the
/// k-th stacked duplicate is discounted by ~`10·log10 k` Phred units.
#[inline(always)]
pub fn adjust(score: u8, dep_count: u16, log_table: &LogTable) -> u8 {
    let k = dep_count.clamp(1, 64);
    let penalty = (10.0 * log_table.log10_int(k as usize)).round() as i32;
    (i32::from(score) - penalty).max(0) as u8
}

/// Per-site observation summary feeding the non-likelihood result columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteSummary {
    /// Observation count per base.
    pub count_all: [u16; 4],
    /// Unique-read observation count per base.
    pub count_uniq: [u16; 4],
    /// Sum of quality scores per base.
    pub qual_sum: [u32; 4],
    /// Total depth.
    pub depth: u16,
}

impl SiteSummary {
    /// Accumulate a summary from raw observations.
    pub fn from_obs(obs: &[SiteObs]) -> SiteSummary {
        let mut s = SiteSummary::default();
        for o in obs {
            let b = o.base as usize;
            s.count_all[b] = s.count_all[b].saturating_add(1);
            if o.uniq {
                s.count_uniq[b] = s.count_uniq[b].saturating_add(1);
            }
            s.qual_sum[b] += u32::from(o.qual);
            s.depth = s.depth.saturating_add(1);
        }
        s
    }

    /// Best-supported base: most observations, ties broken by higher
    /// quality sum, then by lower base code. `None` at zero depth.
    pub fn best_base(&self) -> Option<u8> {
        if self.depth == 0 {
            return None;
        }
        (0..4u8).max_by_key(|&b| {
            (
                self.count_all[b as usize],
                self.qual_sum[b as usize],
                std::cmp::Reverse(b),
            )
        })
    }

    /// Second-best base (with at least one observation).
    pub fn second_base(&self) -> Option<u8> {
        let best = self.best_base()?;
        (0..4u8)
            .filter(|&b| b != best && self.count_all[b as usize] > 0)
            .max_by_key(|&b| {
                (
                    self.count_all[b as usize],
                    self.qual_sum[b as usize],
                    std::cmp::Reverse(b),
                )
            })
    }

    /// Rounded average quality of a base's observations (0 when absent).
    pub fn avg_qual(&self, base: u8) -> u8 {
        let n = self.count_all[base as usize];
        if n == 0 {
            0
        } else {
            (self.qual_sum[base as usize] / u32::from(n)) as u8
        }
    }
}

/// log10-prior of genotype `g` given the reference base and any known-SNP
/// allele frequencies.
pub fn genotype_log_prior(
    g: usize,
    ref_base: u8,
    known: Option<&KnownSnp>,
    params: &ModelParams,
) -> f64 {
    let (a1, a2) = GENOTYPES[g];
    if let Some(k) = known {
        // Hardy–Weinberg prior from population frequencies, floored so a
        // zero-frequency allele stays callable.
        let f1 = k.freqs[a1 as usize].max(1e-4);
        let f2 = k.freqs[a2 as usize].max(1e-4);
        let hw = if a1 == a2 { f1 * f2 } else { 2.0 * f1 * f2 };
        return hw.log10();
    }
    if ref_base >= 4 {
        // Unknown reference: uninformative prior.
        return (1.0 / NUM_GENOTYPES as f64).log10();
    }
    let r = Base::from_code(ref_base);
    let b1 = Base::from_code(a1);
    let b2 = Base::from_code(a2);
    // Transition/transversion weights over the three alternates sum to
    // titv + 2 (one transition, two transversions).
    let weight = |alt: Base| -> f64 {
        if r.is_transition(alt) {
            params.titv_ratio
        } else {
            1.0
        }
    };
    let wsum = params.titv_ratio + 2.0;
    let p = if a1 == a2 {
        if b1 == r {
            1.0 - params.het_rate - params.hom_rate
        } else {
            params.hom_rate * weight(b1) / wsum
        }
    } else if b1 == r || b2 == r {
        let alt = if b1 == r { b2 } else { b1 };
        params.het_rate * weight(alt) / wsum
    } else {
        // Heterozygous with neither allele matching the reference: rare.
        params.het_rate * params.hom_rate
    };
    p.log10()
}

/// Precomputed [`genotype_log_prior`] rows for sites without a known-SNP
/// entry: one row per reference bucket (A, C, G, T, unknown). The prior
/// of such a site depends only on `(ref_base, genotype)`, so the 50
/// `log10` evaluations happen once per table instead of ten per site.
/// Known-SNP sites still price their Hardy–Weinberg prior per site.
pub struct PriorTable {
    rows: [[f64; NUM_GENOTYPES]; 5],
}

impl PriorTable {
    /// Build the table for one parameter set.
    pub fn new(params: &ModelParams) -> PriorTable {
        let mut rows = [[0.0; NUM_GENOTYPES]; 5];
        for (r, row) in rows.iter_mut().enumerate() {
            for (g, v) in row.iter_mut().enumerate() {
                *v = genotype_log_prior(g, r as u8, None, params);
            }
        }
        PriorTable { rows }
    }

    /// The log-prior row for `ref_base` (codes ≥ 4 share the unknown-
    /// reference row, exactly as [`genotype_log_prior`] treats them).
    #[inline]
    pub fn row(&self, ref_base: u8) -> &[f64; NUM_GENOTYPES] {
        &self.rows[usize::from(ref_base.min(4))]
    }
}

/// Exact two-sided binomial test of `k` successes in `n` trials at
/// `p = 1/2` (the allele-balance check backing result column 15).
pub fn binomial_two_sided_p(k: u32, n: u32) -> f64 {
    if n == 0 {
        return 1.0;
    }
    // pmf(i) computed in log space for stability at large n.
    let ln_pmf = |i: u32| -> f64 { ln_choose(n, i) + (n as f64) * 0.5f64.ln() };
    let threshold = ln_pmf(k) + 1e-9;
    let mut p = 0.0;
    for i in 0..=n {
        let lp = ln_pmf(i);
        if lp <= threshold {
            p += lp.exp();
        }
    }
    p.min(1.0)
}

fn ln_choose(n: u32, k: u32) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: u32) -> f64 {
    // Exact accumulation for small n, Stirling above.
    if n < 256 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let x = n as f64;
        x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
    }
}

/// Combine likelihoods, priors, and the observation summary into one
/// result row (the `posterior` workflow component).
#[allow(clippy::too_many_arguments)]
pub fn posterior(
    type_likely: &[f64; NUM_GENOTYPES],
    summary: &SiteSummary,
    ref_base: u8,
    known: Option<&KnownSnp>,
    params: &ModelParams,
) -> SnpRow {
    posterior_impl(type_likely, summary, ref_base, known, params, |g| {
        genotype_log_prior(g, ref_base, known, params)
    })
}

/// [`posterior`] with the no-known-SNP priors served from a precomputed
/// [`PriorTable`] — identical results (the table holds the exact values
/// [`genotype_log_prior`] produces), built for tight per-site loops.
pub fn posterior_cached(
    type_likely: &[f64; NUM_GENOTYPES],
    summary: &SiteSummary,
    ref_base: u8,
    known: Option<&KnownSnp>,
    params: &ModelParams,
    priors: &PriorTable,
) -> SnpRow {
    match known {
        Some(_) => posterior(type_likely, summary, ref_base, known, params),
        None => {
            let row = priors.row(ref_base);
            posterior_impl(type_likely, summary, ref_base, known, params, |g| row[g])
        }
    }
}

fn posterior_impl(
    type_likely: &[f64; NUM_GENOTYPES],
    summary: &SiteSummary,
    ref_base: u8,
    known: Option<&KnownSnp>,
    params: &ModelParams,
    prior: impl Fn(usize) -> f64,
) -> SnpRow {
    let mut row = SnpRow {
        ref_base,
        is_known_snp: u8::from(known.is_some()),
        ..SnpRow::default()
    };
    if summary.depth == 0 {
        // No evidence: uncalled site (consensus N, quality 0).
        return row;
    }

    // Posterior = log-prior + log-likelihood; find best and runner-up.
    let mut best = 0usize;
    let mut second = usize::MAX;
    let mut best_post = f64::NEG_INFINITY;
    let mut second_post = f64::NEG_INFINITY;
    for (g, &tl) in type_likely.iter().enumerate() {
        let post = prior(g) + tl;
        if post > best_post {
            second = best;
            second_post = best_post;
            best = g;
            best_post = post;
        } else if post > second_post {
            second = g;
            second_post = post;
        }
    }
    debug_assert!(second != usize::MAX);

    let (a1, a2) = GENOTYPES[best];
    row.genotype = iupac(Base::from_code(a1), Base::from_code(a2));
    row.quality = (10.0 * (best_post - second_post)).round().clamp(0.0, 99.0) as u8;

    let best_b = summary.best_base().expect("depth > 0");
    row.best_base = best_b;
    row.avg_qual_best = summary.avg_qual(best_b);
    row.count_all_best = summary.count_all[best_b as usize];
    row.count_uniq_best = summary.count_uniq[best_b as usize];
    match summary.second_base() {
        Some(sb) => {
            row.second_base = sb;
            row.avg_qual_second = summary.avg_qual(sb);
            row.count_all_second = summary.count_all[sb as usize];
            row.count_uniq_second = summary.count_uniq[sb as usize];
        }
        None => {
            row.second_base = N_CODE;
        }
    }
    row.depth = summary.depth;

    // Allele balance: only meaningful for heterozygous calls.
    row.rank_sum_milli = if a1 != a2 {
        let k = u32::from(summary.count_all[a1 as usize]);
        let n = k + u32::from(summary.count_all[a2 as usize]);
        (binomial_two_sided_p(k, n) * 1000.0).round() as u16
    } else {
        1000
    };
    row.copy_milli = ((f64::from(summary.depth) / params.expected_depth) * 1000.0)
        .round()
        .min(65_535.0) as u16;
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(base: u8, qual: u8) -> SiteObs {
        SiteObs {
            base,
            qual,
            coord: 0,
            strand: 0,
            uniq: true,
        }
    }

    #[test]
    fn genotype_enumeration_matches_paper_loop() {
        // Algorithm 1: for allele1 in 0..4 { for allele2 in allele1..4 }.
        let mut n = 0;
        for a1 in 0..4u8 {
            for a2 in a1..4 {
                assert_eq!(GENOTYPES[n], (a1, a2));
                assert_eq!(genotype_index(a1, a2), n);
                n += 1;
            }
        }
        assert_eq!(n, NUM_GENOTYPES);
    }

    #[test]
    fn adjust_first_observation_unchanged() {
        let lt = LogTable::new();
        for q in [0u8, 1, 30, 63] {
            assert_eq!(adjust(q, 1, &lt), q);
        }
    }

    #[test]
    fn adjust_penalizes_duplicates_monotonically() {
        let lt = LogTable::new();
        let q = 40u8;
        let mut last = adjust(q, 1, &lt);
        for k in 2..=64u16 {
            let a = adjust(q, k, &lt);
            assert!(a <= last, "k={k}");
            last = a;
        }
        // 10·log10(2) ≈ 3 → second duplicate loses ~3 Phred.
        assert_eq!(adjust(40, 2, &lt), 37);
        // Saturates at zero, never wraps.
        assert_eq!(adjust(3, 64, &lt), 0);
    }

    #[test]
    fn adjust_clamps_dep_count() {
        let lt = LogTable::new();
        assert_eq!(adjust(40, 64, &lt), adjust(40, 1000, &lt));
        assert_eq!(adjust(40, 0, &lt), 40, "defensive clamp at k=0");
    }

    #[test]
    fn summary_counts_and_bests() {
        let s = SiteSummary::from_obs(&[
            obs(0, 40),
            obs(0, 30),
            obs(2, 35),
            SiteObs {
                base: 2,
                qual: 20,
                coord: 1,
                strand: 1,
                uniq: false,
            },
            obs(2, 10),
        ]);
        assert_eq!(s.depth, 5);
        assert_eq!(s.count_all, [2, 0, 3, 0]);
        assert_eq!(s.count_uniq, [2, 0, 2, 0]);
        assert_eq!(s.best_base(), Some(2));
        assert_eq!(s.second_base(), Some(0));
        assert_eq!(s.avg_qual(0), 35);
        assert_eq!(s.avg_qual(2), 21);
        assert_eq!(s.avg_qual(1), 0);
    }

    #[test]
    fn summary_empty_site() {
        let s = SiteSummary::from_obs(&[]);
        assert_eq!(s.best_base(), None);
        assert_eq!(s.second_base(), None);
    }

    #[test]
    fn priors_form_rough_distribution() {
        let p = ModelParams::default();
        for ref_base in 0..4u8 {
            let total: f64 = (0..NUM_GENOTYPES)
                .map(|g| 10f64.powf(genotype_log_prior(g, ref_base, None, &p)))
                .sum();
            assert!((total - 1.0).abs() < 0.01, "ref {ref_base}: total {total}");
        }
    }

    #[test]
    fn hom_ref_prior_dominates() {
        let p = ModelParams::default();
        let hom_ref = genotype_log_prior(genotype_index(1, 1), 1, None, &p);
        for g in 0..NUM_GENOTYPES {
            if g != genotype_index(1, 1) {
                assert!(genotype_log_prior(g, 1, None, &p) < hom_ref);
            }
        }
    }

    #[test]
    fn transition_prior_beats_transversion() {
        let p = ModelParams::default();
        // ref A: transition alt is G.
        let het_ag = genotype_log_prior(genotype_index(0, 2), 0, None, &p);
        let het_ac = genotype_log_prior(genotype_index(0, 1), 0, None, &p);
        assert!(het_ag > het_ac);
        let diff = 10f64.powf(het_ag) / 10f64.powf(het_ac);
        assert!((diff - p.titv_ratio).abs() < 1e-9);
    }

    #[test]
    fn known_snp_prior_uses_frequencies() {
        let p = ModelParams::default();
        let k = KnownSnp {
            pos: 0,
            ref_base: Base::A,
            freqs: [0.6, 0.0, 0.4, 0.0],
        };
        let het = genotype_log_prior(genotype_index(0, 2), 0, Some(&k), &p);
        assert!((10f64.powf(het) - 2.0 * 0.6 * 0.4).abs() < 1e-9);
        // A zero-frequency allele is floored, not impossible.
        let rare = genotype_log_prior(genotype_index(1, 1), 0, Some(&k), &p);
        assert!(rare.is_finite());
    }

    #[test]
    fn binomial_p_values() {
        assert_eq!(binomial_two_sided_p(0, 0), 1.0);
        assert!((binomial_two_sided_p(5, 10) - 1.0).abs() < 1e-9);
        // 0 of 10 heads: p = 2 * (1/1024) ≈ 0.00195.
        let p = binomial_two_sided_p(0, 10);
        assert!((p - 2.0 / 1024.0).abs() < 1e-6, "{p}");
        // Symmetry.
        assert!((binomial_two_sided_p(3, 10) - binomial_two_sided_p(7, 10)).abs() < 1e-12);
        // Large n stays finite and sane.
        let p = binomial_two_sided_p(300, 600);
        assert!((0.9..=1.0).contains(&p), "{p}");
    }

    #[test]
    fn posterior_zero_depth_is_uncalled() {
        let tl = [0.0f64; NUM_GENOTYPES];
        let row = posterior(
            &tl,
            &SiteSummary::default(),
            1,
            None,
            &ModelParams::default(),
        );
        assert_eq!(row.genotype, b'N');
        assert_eq!(row.quality, 0);
        assert_eq!(row.depth, 0);
        assert_eq!(row.ref_base, 1);
    }

    #[test]
    fn posterior_calls_obvious_homozygote() {
        // Strong likelihood for GG over everything else.
        let mut tl = [-60.0f64; NUM_GENOTYPES];
        tl[genotype_index(2, 2)] = -1.0;
        tl[genotype_index(0, 2)] = -20.0;
        let s = SiteSummary::from_obs(&[obs(2, 40); 12]);
        let row = posterior(&tl, &s, 0, None, &ModelParams::default());
        assert_eq!(row.genotype, b'G');
        assert!(row.quality > 50);
        assert_eq!(row.best_base, 2);
        assert_eq!(row.second_base, N_CODE);
        assert!(row.is_variant());
        assert_eq!(row.rank_sum_milli, 1000, "hom call skips the balance test");
    }

    #[test]
    fn posterior_het_reports_balance() {
        let mut tl = [-60.0f64; NUM_GENOTYPES];
        tl[genotype_index(0, 2)] = -1.0;
        let mut v = vec![obs(0, 40); 6];
        v.extend(vec![obs(2, 40); 6]);
        let s = SiteSummary::from_obs(&v);
        let row = posterior(&tl, &s, 0, None, &ModelParams::default());
        assert_eq!(row.genotype, b'R');
        assert_eq!(row.rank_sum_milli, 1000, "perfect balance → p = 1");
        assert_eq!(row.count_all_best, 6);
        assert_eq!(row.count_all_second, 6);
    }

    #[test]
    fn posterior_known_flag_set() {
        let k = KnownSnp {
            pos: 5,
            ref_base: Base::A,
            freqs: [0.5, 0.0, 0.5, 0.0],
        };
        let tl = [0.0f64; NUM_GENOTYPES];
        let row = posterior(
            &tl,
            &SiteSummary::default(),
            0,
            Some(&k),
            &ModelParams::default(),
        );
        assert_eq!(row.is_known_snp, 1);
    }

    #[test]
    fn copy_number_scales_with_depth() {
        let mut tl = [-10.0f64; NUM_GENOTYPES];
        tl[0] = -1.0;
        let s = SiteSummary::from_obs(&[obs(0, 40); 20]);
        let params = ModelParams {
            expected_depth: 10.0,
            ..Default::default()
        };
        let row = posterior(&tl, &s, 0, None, &params);
        assert_eq!(row.copy_milli, 2000);
    }
}
