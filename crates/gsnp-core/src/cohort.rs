//! Cohort-scale multi-sample calling with cross-sample amortization.
//!
//! Calling N samples over the same reference as N independent
//! [`crate::pipeline::GsnpPipeline`] runs pays N× for everything
//! *reference-shaped*: the `cal_p_matrix` calibration blend, the
//! `new_p_matrix` precompute, the per-device score-table upload, and the
//! per-run thread/channel setup. None of that depends on which sample a
//! window came from. [`CohortPipeline`] pays each exactly once:
//!
//! * **One pooled calibration** ([`SharedTables::calibrate_pooled`])
//!   over every sample's reads, and **one `DeviceTables` upload per
//!   device** — ledger-counted table H2D bytes scale O(devices), not
//!   O(N·devices) (`tests/cohort_parity.rs`).
//! * **Sample-major mega-batching**: every sample reads the *same*
//!   window grid (windows tile the reference — a structural property of
//!   [`seqio::window::WindowReader`] — so site alignment across samples
//!   is deterministic, no coordination needed). The producer concatenates
//!   the same `k` windows of all N samples into ONE device batch, and the
//!   existing batched device path ([`crate::pipeline`]'s fused
//!   counting+likelihood launch) scores all of them in one launch group —
//!   PR 6's `launch_batch` axis extended across samples, exactly the
//!   inter-task batching genome-scale CUDA callers use.
//! * **Per-sample outputs stay byte-identical** to single-sample runs
//!   given the same tables: compressed bytes are grouping-invariant
//!   (`tests/batch_parity.rs`), so demuxing a batch back into per-sample
//!   compression groups reproduces each sample's single-run stream
//!   bit-for-bit at any (samples, devices, batch) shape.
//!
//! On top of the shared scan, the cohort path adds two call-quality
//! mechanisms single runs don't have: per-site [`QualityGates`] that
//! replace unreliable calls with explicit NoCall rows, and a persistent
//! [`BadSiteList`] that accumulates strikes against chronically noisy
//! sites across runs and force-NoCalls them once they cross a threshold.

use std::collections::BTreeMap;
use std::time::Instant;

use compress::{column, input_codec};
use crossbeam::channel::bounded;
use gpu_sim::{BackendDispatcher, DeviceGroup, LaunchStats};
use seqio::fasta::Reference;
use seqio::prior::PriorMap;
use seqio::result::{SnpRow, SnpTable};
use seqio::soap::AlignedRead;
use seqio::window::WindowReader;

use crate::arena::ArenaPool;
use crate::likelihood::DeviceTables;
use crate::pipeline::{
    add_times, join_stage, journal_run_stats, merge_stats, posterior_rows, run_device_batch,
    BatchScratch, ComponentTimes, GsnpConfig, PipelineStats, StageReport,
};
use crate::progress::{ProgressTracker, STAGE_OUTPUT, STAGE_POSTERIOR, STAGE_READ};
use crate::stream::{DeviceLaneStats, OrderedReassembler, OverlapStats, StageStats};
use crate::tables::SharedTables;

/// Per-site quality gates: calls failing either bound are replaced with
/// an explicit NoCall row (genotype `N`, quality 0) that preserves the
/// site's observed depth and reference base. The default (`0`/`0`) is
/// inactive — gating off is what the cohort/single-run parity proof runs
/// under, since gates intentionally change outputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityGates {
    /// Minimum consensus quality (Phred) to keep a call.
    pub min_quality: u8,
    /// Minimum site depth (covering reads) to keep a call.
    pub min_depth: u16,
}

impl QualityGates {
    /// Whether any gate is configured.
    pub fn is_active(&self) -> bool {
        self.min_quality > 0 || self.min_depth > 0
    }

    /// Whether a called row passes both gates.
    pub fn passes(&self, row: &SnpRow) -> bool {
        row.quality >= self.min_quality && row.depth >= self.min_depth
    }
}

/// Persistent cross-run feedback list of chronically noisy sites.
///
/// After a cohort run, sites where at least half the covered samples were
/// quality-gated land in [`CohortOutput::noisy_sites`]; absorbing them
/// here adds one strike each. A site at or above [`BadSiteList::threshold`]
/// strikes is *bad*: later runs force-NoCall it outright (downweighting
/// chronically unreliable loci — collapsed repeats, mapping artifacts —
/// the way production pipelines maintain blacklist BEDs across batches).
/// The list serializes to a two-column `pos\tstrikes` text file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadSiteList {
    strikes: BTreeMap<u64, u32>,
    /// Strike count at which a site is force-NoCalled (default 3).
    pub threshold: u32,
}

impl Default for BadSiteList {
    fn default() -> Self {
        BadSiteList {
            strikes: BTreeMap::new(),
            threshold: 3,
        }
    }
}

impl BadSiteList {
    /// An empty list with the default threshold.
    pub fn new() -> BadSiteList {
        BadSiteList::default()
    }

    /// Current strikes against `pos`.
    pub fn strikes(&self, pos: u64) -> u32 {
        self.strikes.get(&pos).copied().unwrap_or(0)
    }

    /// Whether `pos` has accumulated enough strikes to be force-NoCalled.
    pub fn is_bad(&self, pos: u64) -> bool {
        self.strikes(pos) >= self.threshold
    }

    /// Add one strike against each site (a run's noisy-site feedback).
    pub fn absorb(&mut self, noisy_sites: &[u64]) {
        for &pos in noisy_sites {
            *self.strikes.entry(pos).or_insert(0) += 1;
        }
    }

    /// Number of sites with at least one strike.
    pub fn len(&self) -> usize {
        self.strikes.len()
    }

    /// Whether no site has a strike.
    pub fn is_empty(&self) -> bool {
        self.strikes.is_empty()
    }

    /// Serialize as `pos\tstrikes` lines (positions ascending).
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for (pos, n) in &self.strikes {
            out.push_str(&format!("{pos}\t{n}\n"));
        }
        out
    }

    /// Parse the [`BadSiteList::serialize`] format (threshold keeps its
    /// default; set [`BadSiteList::threshold`] separately).
    pub fn parse(text: &str) -> Result<BadSiteList, String> {
        let mut list = BadSiteList::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (pos, n) = line
                .split_once('\t')
                .ok_or_else(|| format!("bad-site list line {}: missing tab", lineno + 1))?;
            let pos: u64 = pos
                .parse()
                .map_err(|e| format!("bad-site list line {}: {e}", lineno + 1))?;
            let n: u32 = n
                .parse()
                .map_err(|e| format!("bad-site list line {}: {e}", lineno + 1))?;
            list.strikes.insert(pos, n);
        }
        Ok(list)
    }
}

/// Cohort-run configuration: the base single-run config plus the
/// cohort-only call-quality controls.
#[derive(Debug, Clone, Default)]
pub struct CohortCallConfig {
    /// The underlying pipeline configuration (window size, device group,
    /// batching, backend…). `base.shared_tables`, when set, overrides the
    /// cohort's own pooled calibration.
    pub base: GsnpConfig,
    /// Per-site quality gates (default: inactive).
    pub gates: QualityGates,
    /// Chronically-noisy-site feedback from previous runs (default:
    /// empty — no site is force-NoCalled).
    pub bad_sites: BadSiteList,
}

/// One sample's input to a cohort run.
#[derive(Debug, Clone, Copy)]
pub struct SampleReads<'a> {
    /// Sample name (labels the per-sample output).
    pub name: &'a str,
    /// Position-sorted alignments.
    pub reads: &'a [AlignedRead],
}

/// One sample's slice of a cohort run's output.
#[derive(Debug)]
pub struct SampleOutput {
    /// Sample name.
    pub name: String,
    /// Per-window result tables.
    pub tables: Vec<SnpTable>,
    /// The sample's compressed result file — byte-identical to a
    /// single-sample run over the same reads and tables.
    pub compressed: Vec<u8>,
    /// Variant calls emitted for this sample (after gating).
    pub snp_count: u64,
    /// Calls replaced with NoCall by [`QualityGates`].
    pub gated_nocalls: u64,
    /// Calls force-NoCalled by the [`BadSiteList`].
    pub forced_nocalls: u64,
}

impl SampleOutput {
    /// Flatten all windows into rows (for comparisons).
    pub fn all_rows(&self) -> Vec<SnpRow> {
        self.tables
            .iter()
            .flat_map(|t| t.rows.iter().copied())
            .collect()
    }
}

/// Everything a cohort run produces.
#[derive(Debug)]
pub struct CohortOutput {
    /// Per-sample outputs, in input order.
    pub samples: Vec<SampleOutput>,
    /// Aggregate statistics over the whole cohort
    /// ([`PipelineStats::samples`] = N; site/window totals sum lanes).
    pub stats: PipelineStats,
    /// Modelled component times (device components use the cost model).
    pub times: ComponentTimes,
    /// Pure host wall-clock per component.
    pub wall: ComponentTimes,
    /// Sites where ≥ half the covered samples were quality-gated this
    /// run — feed to [`BadSiteList::absorb`] to persist the signal.
    pub noisy_sites: Vec<u64>,
}

impl CohortOutput {
    /// The output of the sample named `name`, if present.
    pub fn sample(&self, name: &str) -> Option<&SampleOutput> {
        self.samples.iter().find(|s| s.name == name)
    }
}

/// Per-sample tallies the posterior stage accumulates alongside its
/// [`StageReport`].
#[derive(Default)]
struct PostTallies {
    snp: Vec<u64>,
    gated: Vec<u64>,
    forced: Vec<u64>,
    /// Covered-but-gated sample count per site (noisy-site detection).
    gated_by_site: BTreeMap<u64, u32>,
}

impl PostTallies {
    fn new(num_samples: usize) -> Self {
        PostTallies {
            snp: vec![0; num_samples],
            gated: vec![0; num_samples],
            forced: vec![0; num_samples],
            gated_by_site: BTreeMap::new(),
        }
    }
}

/// One sample-major launch batch: the same `wins` windows of every
/// sample, arenas ordered `[s0:w0..][s1:w0..]…`.
struct CProduced {
    idx: usize,
    wins: usize,
    arenas: Vec<crate::arena::WindowArena>,
}

struct CScored {
    idx: usize,
    wins: usize,
    arenas: Vec<crate::arena::WindowArena>,
    tl_bytes: u64,
    dev: usize,
}

struct CCalled {
    idx: usize,
    /// `per_sample[s]` = this batch's `(window_start, rows)` for sample s.
    per_sample: Vec<Vec<(u64, Vec<SnpRow>)>>,
    dev: usize,
}

/// The cohort pipeline driver.
pub struct CohortPipeline {
    config: CohortCallConfig,
}

impl CohortPipeline {
    /// Create a cohort pipeline with the given configuration.
    pub fn new(config: CohortCallConfig) -> Self {
        CohortPipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CohortCallConfig {
        &self.config
    }

    /// Call every sample over the shared reference in one run.
    ///
    /// Always streams (the sample-major batches need the channel
    /// topology even at depth 1). Device tracing (`base.trace`) attaches
    /// to the device group only; the cohort loop records no host-side
    /// pipeline tracks.
    pub fn run(
        &self,
        samples: &[SampleReads<'_>],
        reference: &Reference,
        priors: &PriorMap,
    ) -> CohortOutput {
        let cfg = &self.config.base;
        let num_samples = samples.len();
        assert!(num_samples >= 1, "cohort needs at least one sample");

        let tracker = cfg
            .progress
            .clone()
            .unwrap_or_else(|| std::sync::Arc::new(ProgressTracker::new()));
        let journal = cfg.journal.clone();
        let mut group = DeviceGroup::new(cfg.device.clone(), cfg.num_devices)
            .with_launch_hist(&tracker.kernel_hist());
        if cfg.sanitize {
            group = group.with_sanitizer(gpu_sim::SanitizerConfig::all());
        }
        if cfg.contracts {
            group = group.with_contracts();
        }
        if let Some(rec) = &cfg.trace {
            group = group.with_trace(rec);
        }
        group.set_pool_enabled(cfg.pooled);
        let group = &group;
        let dispatchers: Vec<BackendDispatcher<'_>> = group
            .devices()
            .iter()
            .map(|d| {
                BackendDispatcher::with_policy(d, cfg.backend, cfg.auto)
                    .unwrap_or_else(|e| panic!("gsnp cohort: {e}"))
            })
            .collect();

        let mut times = ComponentTimes::default();
        let mut wall = ComponentTimes::default();
        let mut stats = PipelineStats {
            samples: num_samples as u64,
            ..PipelineStats::default()
        };

        // ---- cal_p_matrix + load_table: ONCE for the whole cohort ----
        let t0 = Instant::now();
        let shared = match &cfg.shared_tables {
            Some(st) => std::sync::Arc::clone(st),
            None => std::sync::Arc::new(SharedTables::calibrate_pooled(
                samples.iter().map(|s| s.reads),
                reference,
                &cfg.params,
            )),
        };
        // One host image, one upload (one ledger charge) per DEVICE —
        // not per sample. This is the O(devices) upload invariant.
        let tables =
            DeviceTables::upload_group(group, &shared.p_matrix, &shared.new_p, &shared.log_table);
        // Per-sample temporary compressed inputs (§V-A) — the input codec
        // is per sample, unchanged from single runs.
        let temp_inputs: Option<Vec<Vec<u8>>> = if cfg.compress_input {
            Some(
                samples
                    .iter()
                    .map(|s| input_codec::compress_reads(&reference.name, s.reads))
                    .collect(),
            )
        } else {
            None
        };
        let cal_wall = t0.elapsed().as_secs_f64();
        wall.cal_p = cal_wall;
        stats.table_bytes = tables[0].upload_bytes();
        times.cal_p = cal_wall + stats.table_bytes as f64 / cfg.device.pcie_bw;
        stats.peak_host_bytes += temp_inputs
            .as_ref()
            .map_or(0, |t| t.iter().map(|b| b.len() as u64).sum());

        let depth = cfg.pipeline_depth.max(1);
        let num_devices = group.len();
        let params = &cfg.params;
        let variant = cfg.variant;
        let gpu_output = cfg.gpu_output;
        let window_size = cfg.window_size;
        let coalesced_bw = cfg.device.coalesced_bw;
        let batch_size = cfg.launch_batch_size();
        let ref_len = reference.len() as u64;
        let device_table_bytes = tables[0].upload_bytes();
        let gates = self.config.gates;
        let bad_sites = &self.config.bad_sites;
        tracker.set_samples(num_samples as u64);
        tracker.set_total_windows(ref_len.div_ceil(window_size.max(1) as u64) * num_samples as u64);
        tracker.begin_lanes(num_devices);
        let tracker = &*tracker;
        let journal_ref = journal.as_deref();

        let (win_tx, win_rx) = bounded::<CProduced>(depth);
        let (score_tx, score_rx) = bounded::<CScored>(depth);
        let (call_tx, call_rx) = bounded::<CCalled>(depth);

        let mut out_tables: Vec<Vec<SnpTable>> = (0..num_samples).map(|_| Vec::new()).collect();
        let mut compressed: Vec<Vec<u8>> = (0..num_samples).map(|_| Vec::new()).collect();
        let mut out_rep = StageReport::default();
        let arena_pool = ArenaPool::new(cfg.pooled);
        let loop_start = Instant::now();

        let (read_rep, device_reps, (post_rep, tallies)) = std::thread::scope(|s| {
            // ---- producer: N lockstep readers over the shared grid ----
            let prod_pool = std::sync::Arc::clone(&arena_pool);
            let producer = s.spawn(move || {
                let mut rep = StageReport::default();
                let t0 = Instant::now();
                let mut readers: Vec<_> = match temp_inputs {
                    Some(blobs) => blobs
                        .into_iter()
                        .map(|bytes| {
                            let owned = input_codec::decompress_reads(&bytes)
                                .expect("pipeline-internal temporary input must decode");
                            WindowReader::from_reads(owned, ref_len, window_size)
                        })
                        .collect(),
                    None => samples
                        .iter()
                        .map(|s| WindowReader::from_reads(s.reads.to_vec(), ref_len, window_size))
                        .collect(),
                };
                let dt = t0.elapsed().as_secs_f64();
                rep.wall.read_site += dt;
                rep.times.read_site += dt;
                rep.stage.busy += dt;
                tracker.stage_busy(STAGE_READ, dt);

                let mut idx = 0usize;
                loop {
                    // Sample 0 decides how many windows this batch holds;
                    // every other sample's reader must produce exactly the
                    // same count (they tile the same reference).
                    let t0 = Instant::now();
                    let mut arenas = Vec::with_capacity(batch_size * num_samples);
                    let mut wins = 0usize;
                    while wins < batch_size {
                        let mut arena = prod_pool.checkout();
                        let got = readers[0]
                            .next_window_into(&mut arena.window)
                            .expect("in-memory reads are valid");
                        if !got {
                            prod_pool.checkin(arena);
                            break;
                        }
                        arenas.push(arena);
                        wins += 1;
                    }
                    for reader in readers.iter_mut().skip(1) {
                        for w in 0..wins {
                            let mut arena = prod_pool.checkout();
                            let got = reader
                                .next_window_into(&mut arena.window)
                                .expect("in-memory reads are valid");
                            assert!(
                                got,
                                "cohort window grids diverged at batch {idx} window {w}"
                            );
                            assert_eq!(
                                arena.window.start, arenas[w].window.start,
                                "cohort site alignment broke at batch {idx}"
                            );
                            arenas.push(arena);
                        }
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    rep.wall.read_site += dt;
                    rep.times.read_site += dt;
                    rep.stage.busy += dt;
                    tracker.stage_busy(STAGE_READ, dt);
                    if wins == 0 {
                        break;
                    }

                    let t0 = Instant::now();
                    if win_tx.send(CProduced { idx, wins, arenas }).is_err() {
                        break; // downstream died; its panic surfaces at join
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    rep.stage.stall_out += dt;
                    tracker.stage_stall(STAGE_READ, dt);
                    idx += 1;
                }
                rep
            });

            // ---- device stage: N workers, one launch per cohort batch ----
            let mut workers = Vec::with_capacity(num_devices);
            for (worker_id, dev_tables) in tables.iter().enumerate().take(num_devices) {
                let win_rx = win_rx.clone();
                let score_tx = score_tx.clone();
                let disp = &dispatchers[worker_id];
                workers.push(s.spawn(move || {
                    let mut rep = StageReport::default();
                    let mut lane = DeviceLaneStats::default();
                    let mut scratch = BatchScratch::default();
                    loop {
                        let t0 = Instant::now();
                        let CProduced {
                            idx,
                            wins,
                            mut arenas,
                        } = match win_rx.recv() {
                            Ok(p) => p,
                            Err(_) => break,
                        };
                        let dt = t0.elapsed().as_secs_f64();
                        rep.stage.stall_in += dt;
                        lane.stage.stall_in += dt;
                        tracker.lane_wait(worker_id, dt);
                        let busy_start = Instant::now();

                        // ONE fused launch group covers the same windows
                        // of every sample — the sample-major batch.
                        let k = arenas.len();
                        let sites_before = rep.stats.num_sites;
                        let tl_bytes = run_device_batch(
                            disp,
                            dev_tables,
                            variant,
                            device_table_bytes,
                            coalesced_bw,
                            &mut arenas,
                            &mut scratch,
                            &mut rep.times,
                            &mut rep.wall,
                            &mut rep.stats,
                        );
                        lane.windows += k as u64;
                        if idx % num_devices != worker_id {
                            lane.steals += k as u64;
                            tracker.lane_steal(worker_id, k as u64);
                        }
                        let dt = busy_start.elapsed().as_secs_f64();
                        rep.stage.busy += dt;
                        lane.stage.busy += dt;
                        tracker.lane_batch(
                            worker_id,
                            k as u64,
                            rep.stats.num_sites - sites_before,
                            dt,
                        );
                        if let Some(j) = journal_ref {
                            j.event(
                                "batch",
                                &format!(
                                    "\"lane\":{worker_id},\"idx\":{idx},\"windows\":{k},\
                                     \"busy_seconds\":{dt:.6}"
                                ),
                            );
                        }

                        let t0 = Instant::now();
                        let scored = CScored {
                            idx,
                            wins,
                            arenas,
                            tl_bytes,
                            dev: worker_id,
                        };
                        if score_tx.send(scored).is_err() {
                            break;
                        }
                        let dt = t0.elapsed().as_secs_f64();
                        rep.stage.stall_out += dt;
                        lane.stage.stall_out += dt;
                    }
                    (rep, lane)
                }));
            }
            drop(win_rx);
            drop(score_tx);

            // ---- posterior stage: demux per sample, gate, feedback ----
            let post_pool = std::sync::Arc::clone(&arena_pool);
            let posterior_stage = s.spawn(move || {
                let mut rep = StageReport::default();
                let mut tallies = PostTallies::new(num_samples);
                loop {
                    let t0 = Instant::now();
                    let CScored {
                        idx,
                        wins,
                        arenas,
                        tl_bytes,
                        dev,
                    } = match score_rx.recv() {
                        Ok(sc) => sc,
                        Err(_) => break,
                    };
                    let dt = t0.elapsed().as_secs_f64();
                    rep.stage.stall_in += dt;
                    tracker.stage_stall(STAGE_POSTERIOR, dt);
                    let busy_start = Instant::now();

                    debug_assert_eq!(arenas.len(), wins * num_samples);
                    let t0 = Instant::now();
                    let mut per_sample: Vec<Vec<(u64, Vec<SnpRow>)>> =
                        (0..num_samples).map(|_| Vec::with_capacity(wins)).collect();
                    let mut row_count = 0u64;
                    for (i, arena) in arenas.into_iter().enumerate() {
                        let sample = i / wins;
                        let mut rows = posterior_rows(
                            arena.window.start,
                            &arena.type_likely,
                            &arena.sw.summaries,
                            reference,
                            priors,
                            params,
                        );
                        apply_site_policies(
                            &mut rows,
                            arena.window.start,
                            sample,
                            &gates,
                            bad_sites,
                            &mut tallies,
                        );
                        tallies.snp[sample] +=
                            rows.iter().filter(|r| r.is_variant()).count() as u64;
                        rep.stats.snp_count +=
                            rows.iter().filter(|r| r.is_variant()).count() as u64;
                        row_count += rows.len() as u64;
                        per_sample[sample].push((arena.window.start, rows));
                        post_pool.checkin(arena);
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    rep.wall.posterior += dt;
                    let mut post_stats = LaunchStats::default();
                    group
                        .device(dev)
                        .charge_d2h(&mut post_stats, tl_bytes + row_count * 32);
                    rep.times.posterior += dt.min(post_stats.sim_time * 4.0) + post_stats.sim_time;
                    let dt = busy_start.elapsed().as_secs_f64();
                    rep.stage.busy += dt;
                    tracker.stage_busy(STAGE_POSTERIOR, dt);

                    let t0 = Instant::now();
                    let called = CCalled {
                        idx,
                        per_sample,
                        dev,
                    };
                    if call_tx.send(called).is_err() {
                        break;
                    }
                    rep.stage.stall_out += t0.elapsed().as_secs_f64();
                }
                (rep, tallies)
            });

            // ---- output stage (this thread): per-sample reassembly ----
            let mut reasm = OrderedReassembler::new();
            loop {
                let t0 = Instant::now();
                let called = match call_rx.recv() {
                    Ok(c) => c,
                    Err(_) => break,
                };
                let dt = t0.elapsed().as_secs_f64();
                out_rep.stage.stall_in += dt;
                tracker.stage_stall(STAGE_OUTPUT, dt);
                let busy_start = Instant::now();
                let mut next = reasm.offer(called.idx, (called.per_sample, called.dev));
                while let Some((per_sample, dev)) = next {
                    let t0 = Instant::now();
                    for (sample, windows) in per_sample.into_iter().enumerate() {
                        // One compression group per (sample, batch): the
                        // RLE-DICT chain runs on the device that scored
                        // the batch, into the sample's own stream.
                        // Grouping invariance (batch_parity) keeps each
                        // stream byte-identical to a single-sample run.
                        let batch_tables: Vec<SnpTable> = windows
                            .into_iter()
                            .map(|(start, rows)| SnpTable::new(reference.name.clone(), start, rows))
                            .collect();
                        let out_stats = if gpu_output {
                            column::write_windows_gpu_batch(
                                &dispatchers[dev],
                                &mut compressed[sample],
                                &batch_tables,
                            )
                        } else {
                            for table in &batch_tables {
                                column::write_window(&mut compressed[sample], table);
                            }
                            LaunchStats::default()
                        };
                        out_rep.times.output += out_stats.sim_time;
                        out_tables[sample].extend(batch_tables);
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    out_rep.wall.output += dt;
                    out_rep.times.output += if gpu_output { dt * 0.25 } else { dt };
                    next = reasm.pop_ready();
                }
                let dt = busy_start.elapsed().as_secs_f64();
                out_rep.stage.busy += dt;
                tracker.stage_busy(STAGE_OUTPUT, dt);
            }
            assert!(reasm.is_drained(), "cohort pipeline lost a batch");

            let device_reps: Vec<(StageReport, DeviceLaneStats)> =
                workers.into_iter().map(join_stage).collect();
            (
                join_stage(producer),
                device_reps,
                join_stage(posterior_stage),
            )
        });
        let loop_wall = loop_start.elapsed().as_secs_f64();

        let mut device_stage = StageStats::default();
        let mut lanes = Vec::with_capacity(num_devices);
        for (rep, lane) in &device_reps {
            add_times(&mut times, &rep.times);
            add_times(&mut wall, &rep.wall);
            merge_stats(&mut stats, &rep.stats);
            device_stage.busy += lane.stage.busy;
            device_stage.stall_in += lane.stage.stall_in;
            device_stage.stall_out += lane.stage.stall_out;
            lanes.push(*lane);
        }
        for rep in [&read_rep, &post_rep, &out_rep] {
            add_times(&mut times, &rep.times);
            add_times(&mut wall, &rep.wall);
            merge_stats(&mut stats, &rep.stats);
        }
        stats.overlap = OverlapStats {
            depth,
            read: read_rep.stage,
            device: device_stage,
            devices: lanes,
            posterior: post_rep.stage,
            output: out_rep.stage,
            wall: loop_wall,
        };
        stats.arena = arena_pool.stats();
        let ledger = group.ledger();
        let total = ledger.total();
        stats.pool = total.pool;
        stats.sanitizer = total.sanitizer;
        stats.ledgers = ledger.per_device;
        stats.kernel_launches = group.kernel_launches();
        stats.contracts = group.contract_report();
        stats.hists = tracker.latency();
        if let Some(j) = journal_ref {
            journal_run_stats(j, &stats);
        }

        // Sites where at least half the covered samples were gated are
        // this run's noisy-site feedback.
        let noisy_sites: Vec<u64> = tallies
            .gated_by_site
            .iter()
            .filter(|&(_, &gated)| gated as usize * 2 >= num_samples)
            .map(|(&pos, _)| pos)
            .collect();

        let sample_outputs: Vec<SampleOutput> = samples
            .iter()
            .enumerate()
            .zip(out_tables.into_iter().zip(compressed))
            .map(|((i, s), (tables, compressed))| SampleOutput {
                name: s.name.to_string(),
                tables,
                compressed,
                snp_count: tallies.snp[i],
                gated_nocalls: tallies.gated[i],
                forced_nocalls: tallies.forced[i],
            })
            .collect();
        if let Some(j) = journal_ref {
            for s in &sample_outputs {
                j.event(
                    "sample",
                    &format!(
                        "\"name\":\"{}\",\"snp_calls\":{},\"gated_nocalls\":{},\
                         \"forced_nocalls\":{},\"output_bytes\":{}",
                        crate::journal::json_escape(&s.name),
                        s.snp_count,
                        s.gated_nocalls,
                        s.forced_nocalls,
                        s.compressed.len()
                    ),
                );
            }
            j.event("gates", &format!("\"noisy_sites\":{}", noisy_sites.len()));
        }

        CohortOutput {
            samples: sample_outputs,
            stats,
            times,
            wall,
            noisy_sites,
        }
    }
}

/// Replace a called row with an explicit NoCall that keeps the site's
/// evidence context (reference base and observed depth) but no call.
fn nocall(row: &SnpRow) -> SnpRow {
    SnpRow {
        ref_base: row.ref_base,
        depth: row.depth,
        ..SnpRow::default()
    }
}

/// Apply the bad-site force-list and quality gates to one window's rows,
/// updating the per-sample tallies and the per-site gating census.
fn apply_site_policies(
    rows: &mut [SnpRow],
    start: u64,
    sample: usize,
    gates: &QualityGates,
    bad_sites: &BadSiteList,
    tallies: &mut PostTallies,
) {
    let force = !bad_sites.is_empty();
    if !force && !gates.is_active() {
        return;
    }
    for (site, row) in rows.iter_mut().enumerate() {
        let pos = start + site as u64;
        if force && bad_sites.is_bad(pos) {
            if row.genotype != b'N' {
                *row = nocall(row);
                tallies.forced[sample] += 1;
            }
            continue;
        }
        if gates.is_active() && row.genotype != b'N' && !gates.passes(row) {
            // Only covered sites count toward the noisy-site census: an
            // uncovered site failing a depth gate is merely uncovered.
            if row.depth > 0 {
                *tallies.gated_by_site.entry(pos).or_insert(0) += 1;
            }
            *row = nocall(row);
            tallies.gated[sample] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(quality: u8, depth: u16, genotype: u8) -> SnpRow {
        SnpRow {
            ref_base: 0,
            genotype,
            quality,
            depth,
            ..SnpRow::default()
        }
    }

    #[test]
    fn gates_default_inactive() {
        let g = QualityGates::default();
        assert!(!g.is_active());
        assert!(g.passes(&row(0, 0, b'A')));
    }

    #[test]
    fn gates_fail_low_quality_and_depth() {
        let g = QualityGates {
            min_quality: 20,
            min_depth: 4,
        };
        assert!(g.is_active());
        assert!(g.passes(&row(20, 4, b'A')));
        assert!(!g.passes(&row(19, 4, b'A')));
        assert!(!g.passes(&row(20, 3, b'A')));
    }

    #[test]
    fn nocall_preserves_evidence_context() {
        let r = row(45, 17, b'G');
        let n = nocall(&r);
        assert_eq!(n.genotype, b'N');
        assert_eq!(n.quality, 0);
        assert_eq!(n.depth, 17);
        assert_eq!(n.ref_base, 0);
        assert!(!n.is_variant());
    }

    #[test]
    fn bad_site_list_roundtrips_and_thresholds() {
        let mut list = BadSiteList::new();
        assert!(list.is_empty());
        list.absorb(&[100, 200]);
        list.absorb(&[100]);
        list.absorb(&[100]);
        assert_eq!(list.strikes(100), 3);
        assert_eq!(list.strikes(200), 1);
        assert!(list.is_bad(100));
        assert!(!list.is_bad(200));
        assert!(!list.is_bad(999));

        let text = list.serialize();
        assert_eq!(text, "100\t3\n200\t1\n");
        let parsed = BadSiteList::parse(&text).unwrap();
        assert_eq!(parsed, list);
        assert!(BadSiteList::parse("junk").is_err());
        assert!(BadSiteList::parse("1\tx").is_err());
        assert_eq!(BadSiteList::parse("").unwrap().len(), 0);
    }

    #[test]
    fn site_policies_gate_and_force() {
        let gates = QualityGates {
            min_quality: 20,
            min_depth: 2,
        };
        let mut bad = BadSiteList::new();
        bad.threshold = 1;
        bad.absorb(&[1002]);
        let mut tallies = PostTallies::new(1);
        let mut rows = vec![
            row(30, 5, b'G'), // passes
            row(10, 5, b'G'), // gated (covered → census)
            row(30, 5, b'C'), // pos 1002: forced
            row(10, 0, b'T'), // gated, uncovered → no census entry
            row(0, 0, b'N'),  // already NoCall: untouched
        ];
        apply_site_policies(&mut rows, 1000, 0, &gates, &bad, &mut tallies);
        assert_eq!(rows[0].genotype, b'G');
        assert_eq!(rows[1].genotype, b'N');
        assert_eq!(rows[2].genotype, b'N');
        assert_eq!(rows[3].genotype, b'N');
        assert_eq!(tallies.gated[0], 2);
        assert_eq!(tallies.forced[0], 1);
        assert_eq!(tallies.gated_by_site.get(&1001), Some(&1));
        assert!(!tallies.gated_by_site.contains_key(&1003));
    }

    #[test]
    fn inactive_policies_touch_nothing() {
        let gates = QualityGates::default();
        let bad = BadSiteList::new();
        let mut tallies = PostTallies::new(1);
        let mut rows = vec![row(1, 0, b'G')];
        let before = rows.clone();
        apply_site_policies(&mut rows, 0, 0, &gates, &bad, &mut tallies);
        assert_eq!(rows, before);
        assert_eq!(tallies.gated[0], 0);
    }
}
