//! Per-window host arenas — the host half of the `recycle` component.
//!
//! Each window flowing through the pipeline needs the same set of host
//! buffers: the loaded observation lists, the sparse `base_word`
//! representation, the `type_likely` readback target, and the multipass
//! sort's span scratch. Allocating them fresh every window puts the
//! allocator on the hot path; §IV-B's point is that the sparse design
//! makes recycling these buffers trivial (clear and refill). A
//! [`WindowArena`] owns one window's worth of buffers, and an
//! [`ArenaPool`] circulates arenas between the pipeline stages so the
//! steady-state window loop performs no heap allocation at all (pinned
//! by `tests/alloc_steady_state.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use seqio::window::Window;
use sortnet::MultipassScratch;

use crate::counting::SparseWindow;
use crate::model::NUM_GENOTYPES;

/// Arenas parked per pool beyond which check-ins free instead of parking.
/// The streamed pipeline keeps at most `2·depth + num_devices + stages`
/// arenas in flight (two bounded channels of `depth`, one window resident
/// per device worker, one in the posterior stage), so with depths and
/// device counts ≤ 8 this only bounds pathological callers. One pool is
/// shared by all device workers: arenas travel producer → worker →
/// posterior, so a per-worker free list would drain to wherever posterior
/// checks in and defeat recycling.
const MAX_PARKED: usize = 32;

/// One window's worth of reusable host buffers. Every field is fully
/// overwritten by its producing stage (`next_window_into`, `count_into`,
/// `likelihood_comp_gpu_into`, `likelihood_sort_gpu_into`), so a recycled
/// arena never needs clearing before reuse.
#[derive(Debug, Default)]
pub struct WindowArena {
    /// The loaded window (`read_site` output).
    pub window: Window,
    /// Sparse representation (`counting` output).
    pub sw: SparseWindow,
    /// Per-site genotype likelihoods (`likelihood_comp` readback).
    pub type_likely: Vec<[f64; NUM_GENOTYPES]>,
    /// Multipass sort span scratch and report.
    pub sort_scratch: MultipassScratch,
}

/// Hit/miss counters for one pool (mirrors `gpu_sim::PoolStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaPoolStats {
    /// Checkouts served from a parked arena.
    pub hits: u64,
    /// Checkouts that built a fresh arena.
    pub misses: u64,
}

/// A free list of [`WindowArena`]s shared between pipeline stages: the
/// producer checks arenas out, the posterior stage checks them back in
/// once `rows` have been extracted. Disabled, every checkout is a fresh
/// allocation and every check-in a drop — the baseline the pooled path
/// is proven byte-identical against.
#[derive(Debug)]
pub struct ArenaPool {
    parked: Mutex<Vec<WindowArena>>,
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArenaPool {
    /// A new pool, pooling iff `enabled`.
    pub fn new(enabled: bool) -> Arc<ArenaPool> {
        Arc::new(ArenaPool {
            parked: Mutex::new(Vec::new()),
            enabled: AtomicBool::new(enabled),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Take an arena — recycled if one is parked, fresh otherwise.
    pub fn checkout(&self) -> WindowArena {
        if let Some(arena) = self.parked.lock().expect("arena pool poisoned").pop() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            arena
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            WindowArena::default()
        }
    }

    /// Return an arena for reuse (dropped when the pool is disabled or
    /// already holds [`MAX_PARKED`]).
    pub fn checkin(&self, arena: WindowArena) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut parked = self.parked.lock().expect("arena pool poisoned");
        if parked.len() < MAX_PARKED {
            parked.push(arena);
        }
    }

    /// Whether check-ins park arenas for reuse.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Checkout hit/miss counts so far.
    pub fn stats(&self) -> ArenaPoolStats {
        ArenaPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycles_after_checkin() {
        let pool = ArenaPool::new(true);
        let mut a = pool.checkout();
        a.sw.words.reserve(100);
        let cap = a.sw.words.capacity();
        pool.checkin(a);
        let b = pool.checkout();
        assert!(b.sw.words.capacity() >= cap, "capacity lost on recycle");
        assert_eq!(pool.stats(), ArenaPoolStats { hits: 1, misses: 1 });
    }

    #[test]
    fn disabled_pool_always_allocates_fresh() {
        let pool = ArenaPool::new(false);
        let mut a = pool.checkout();
        a.type_likely.reserve(50);
        pool.checkin(a);
        let b = pool.checkout();
        assert_eq!(b.type_likely.capacity(), 0);
        assert_eq!(pool.stats(), ArenaPoolStats { hits: 0, misses: 2 });
    }

    #[test]
    fn parked_arenas_are_capped() {
        let pool = ArenaPool::new(true);
        let arenas: Vec<WindowArena> = (0..MAX_PARKED + 4).map(|_| pool.checkout()).collect();
        for a in arenas {
            pool.checkin(a);
        }
        assert_eq!(
            pool.parked.lock().unwrap().len(),
            MAX_PARKED,
            "check-in must drop beyond the cap"
        );
    }
}
