//! Prometheus-style metrics for a GSNP run.
//!
//! [`call_metrics`] flattens a [`GsnpOutput`] — the ledger, overlap,
//! sort-class and sanitizer counters that previous PRs accumulated in
//! ad-hoc structs — into one [`MetricsSnapshot`] under stable `gsnp_`
//! names, so `gsnp call --metrics` and `gsnp stats --format prom`
//! render the exact same schema. Naming follows Prometheus conventions:
//! unit-suffixed (`_seconds`, `_bytes`), `_total` for counters, labels
//! for per-stage / per-device / per-kernel-class breakdowns.

use gpu_sim::{MetricKind, MetricsSnapshot};

use crate::cohort::CohortOutput;
use crate::pipeline::{ComponentTimes, GsnpOutput, PipelineStats};
use crate::stream::StageStats;

/// Build the canonical metrics snapshot for one finished run.
///
/// Every value comes straight from [`GsnpOutput`] fields; the snapshot
/// adds no new measurement, only stable names. Render it with
/// [`MetricsSnapshot::render_text`].
pub fn call_metrics(out: &GsnpOutput) -> MetricsSnapshot {
    run_metrics(&out.stats, &out.times, &out.wall, out.compressed.len())
}

/// Build the metrics snapshot for a cohort run: the same schema as
/// [`call_metrics`] over the cohort's merged counters, plus per-sample
/// series labelled with the sample name. The shared series make cohort
/// and single runs directly comparable on one dashboard — in particular
/// `gsnp_table_upload_bytes_total` stays O(devices) while
/// `gsnp_samples` grows, which is the amortization in one ratio.
pub fn cohort_metrics(out: &CohortOutput) -> MetricsSnapshot {
    use MetricKind::{Counter, Gauge};
    let compressed: usize = out.samples.iter().map(|s| s.compressed.len()).sum();
    let mut m = run_metrics(&out.stats, &out.times, &out.wall, compressed);
    for s in &out.samples {
        let l = &[("sample", s.name.as_str())];
        m.push(
            "gsnp_sample_snp_calls_total",
            "Variant calls emitted per cohort sample",
            Counter,
            l,
            s.snp_count as f64,
        );
        m.push(
            "gsnp_sample_output_bytes",
            "Compressed result bytes per cohort sample",
            Gauge,
            l,
            s.compressed.len() as f64,
        );
        for (reason, v) in [("gated", s.gated_nocalls), ("bad_site", s.forced_nocalls)] {
            m.push(
                "gsnp_sample_nocalls_total",
                "NoCalls emitted per cohort sample by site policy",
                Counter,
                &[("sample", &s.name), ("reason", reason)],
                v as f64,
            );
        }
    }
    m.push(
        "gsnp_noisy_sites",
        "Sites gated in at least half the covered cohort samples",
        Gauge,
        &[],
        out.noisy_sites.len() as f64,
    );
    m
}

fn run_metrics(
    stats: &PipelineStats,
    times: &ComponentTimes,
    wall: &ComponentTimes,
    compressed_len: usize,
) -> MetricsSnapshot {
    use MetricKind::{Counter, Gauge};
    let mut m = MetricsSnapshot::new();
    crate::progress::push_build_info(&mut m);

    // ---- run totals ----
    m.push(
        "gsnp_samples",
        "Samples called in this run (1 for single pipelines, N for cohort)",
        Gauge,
        &[],
        stats.samples as f64,
    );
    m.push(
        "gsnp_table_upload_bytes_total",
        "Score-table bytes uploaded host-to-device (once per device, shared by all samples)",
        Counter,
        &[],
        (stats.table_bytes * stats.ledgers.len() as u64) as f64,
    );
    m.push(
        "gsnp_sites_total",
        "Reference sites processed",
        Counter,
        &[],
        stats.num_sites as f64,
    );
    m.push(
        "gsnp_observations_total",
        "Aligned-base observations processed",
        Counter,
        &[],
        stats.num_obs as f64,
    );
    m.push(
        "gsnp_windows_total",
        "Windows processed",
        Counter,
        &[],
        stats.windows as f64,
    );
    m.push(
        "gsnp_snp_calls_total",
        "Variant calls emitted",
        Counter,
        &[],
        stats.snp_count as f64,
    );
    m.push(
        "gsnp_compressed_output_bytes",
        "Size of the compressed result file",
        Gauge,
        &[],
        compressed_len as f64,
    );
    m.push(
        "gsnp_peak_device_bytes",
        "Peak simulated-device memory per device",
        Gauge,
        &[],
        stats.peak_device_bytes as f64,
    );
    m.push(
        "gsnp_peak_host_bytes",
        "Peak pipeline host memory",
        Gauge,
        &[],
        stats.peak_host_bytes as f64,
    );

    // ---- per-component time, both clock domains ----
    for (clock, t) in [("device", times), ("wall", wall)] {
        for (component, v) in [
            ("cal_p", t.cal_p),
            ("read_site", t.read_site),
            ("counting", t.counting),
            ("likelihood_sort", t.likelihood_sort),
            ("likelihood_comp", t.likelihood_comp),
            ("posterior", t.posterior),
            ("output", t.output),
            ("recycle", t.recycle),
        ] {
            m.push(
                "gsnp_component_seconds",
                "Per-component time by clock domain (device = modelled, wall = host)",
                Counter,
                &[("component", component), ("clock", clock)],
                v,
            );
        }
    }

    // ---- window-loop stage accounting (OverlapStats) ----
    let ov = &stats.overlap;
    m.push(
        "gsnp_pipeline_depth",
        "Bounded-channel depth of the streaming window loop",
        Gauge,
        &[],
        ov.depth as f64,
    );
    m.push(
        "gsnp_pipeline_wall_seconds",
        "End-to-end wall time of the window loop",
        Counter,
        &[],
        ov.wall,
    );
    let stages: [(&str, &StageStats); 4] = [
        ("read", &ov.read),
        ("device", &ov.device),
        ("posterior", &ov.posterior),
        ("output", &ov.output),
    ];
    for (stage, st) in stages {
        push_stage(&mut m, &[("stage", stage)], st);
    }
    for (i, lane) in ov.devices.iter().enumerate() {
        let dev = i.to_string();
        push_stage(&mut m, &[("stage", "lane"), ("device", &dev)], &lane.stage);
        m.push(
            "gsnp_lane_windows_total",
            "Windows scored by each device lane",
            Counter,
            &[("device", &dev)],
            lane.windows as f64,
        );
        m.push(
            "gsnp_lane_steals_total",
            "Windows a lane pulled off its home-device residue class",
            Counter,
            &[("device", &dev)],
            lane.steals as f64,
        );
    }

    // ---- per-device ledgers ----
    for (i, led) in stats.ledgers.iter().enumerate() {
        let dev = i.to_string();
        let l = &[("device", dev.as_str())];
        m.push(
            "gsnp_device_launches_total",
            "Kernel launches per device",
            Counter,
            l,
            led.launches as f64,
        );
        m.push(
            "gsnp_device_transfers_total",
            "Host-device transfer charges per device",
            Counter,
            l,
            led.transfers as f64,
        );
        m.push(
            "gsnp_device_sim_seconds",
            "Modelled device time per device",
            Counter,
            l,
            led.sim_time,
        );
        let c = &led.counters;
        for (counter, v) in [
            ("instructions", c.instructions),
            ("g_load_coalesced", c.g_load_coalesced),
            ("g_load_random", c.g_load_random),
            ("g_store_coalesced", c.g_store_coalesced),
            ("g_store_random", c.g_store_random),
            ("s_load", c.s_load),
            ("s_store", c.s_store),
            ("h2d_bytes", c.h2d_bytes),
            ("d2h_bytes", c.d2h_bytes),
        ] {
            m.push(
                "gsnp_hw_counter_total",
                "Simulated hardware counters per device",
                Counter,
                &[("device", &dev), ("counter", counter)],
                v as f64,
            );
        }
    }

    // ---- per-kernel launch tallies (group sum) ----
    // The launch-batching figure of merit: launches/site falls as the
    // mega-batch coalesces per-window launches, while overhead-seconds
    // exposes the fixed per-launch cost the batching amortizes.
    for tally in &stats.kernel_launches {
        let l = &[("kernel", tally.name.as_str())];
        m.push(
            "gsnp_launches_total",
            "Kernel launches by kernel name (group sum)",
            Counter,
            l,
            tally.launches as f64,
        );
        m.push(
            "gsnp_launch_overhead_seconds",
            "Fixed launch overhead charged by kernel name (group sum)",
            Counter,
            l,
            tally.overhead_seconds,
        );
        m.push_histogram(
            "gsnp_kernel_launch_wall_seconds",
            "Per-launch wall time by kernel name (group merge)",
            l,
            &tally.wall_hist,
        );
    }

    // ---- latency histograms (window / stage / queue / kernel) ----
    // The same families the live `--stats-addr` endpoint exposes
    // mid-run, here with the run's final contents.
    stats.hists.push_metrics(&mut m);

    // ---- backend dispatch (group sum) ----
    // Which compute backend executed each launch, and — for Auto — which
    // way every dispatch decision went. `sim + native == launches`.
    let mut backend = gpu_sim::BackendTallies::default();
    for led in &stats.ledgers {
        backend.sum(&led.backend);
    }
    for (name, v) in [("sim", backend.sim), ("native", backend.native)] {
        m.push(
            "gsnp_backend_launches_total",
            "Kernel launches by compute backend (group sum)",
            Counter,
            &[("backend", name)],
            v as f64,
        );
    }
    for (decision, v) in [("sim", backend.auto_sim), ("native", backend.auto_native)] {
        m.push(
            "gsnp_backend_dispatch_total",
            "Auto-dispatch decisions by chosen backend (group sum)",
            Counter,
            &[("decision", decision)],
            v as f64,
        );
    }

    // ---- pools ----
    m.push(
        "gsnp_pool_hits_total",
        "Device buffer-pool acquires served from a free list (group sum)",
        Counter,
        &[],
        stats.pool.hits as f64,
    );
    m.push(
        "gsnp_pool_misses_total",
        "Device buffer-pool acquires that allocated fresh (group sum)",
        Counter,
        &[],
        stats.pool.misses as f64,
    );
    m.push(
        "gsnp_pool_high_water_bytes",
        "Peak bytes checked out of the device buffer pools",
        Gauge,
        &[],
        stats.pool.high_water_bytes as f64,
    );
    m.push(
        "gsnp_arena_hits_total",
        "Window-arena checkouts served from the free list",
        Counter,
        &[],
        stats.arena.hits as f64,
    );
    m.push(
        "gsnp_arena_misses_total",
        "Window-arena checkouts that built a fresh arena",
        Counter,
        &[],
        stats.arena.misses as f64,
    );

    // ---- sanitizer findings ----
    let san = &stats.sanitizer;
    for (check, v) in [
        ("race", san.races),
        ("uninit_read", san.uninit_reads),
        ("oob_access", san.oob_accesses),
        ("shared_leak", san.shared_leaks),
        ("conformance_escape", san.conformance_escapes),
        ("overwide_declaration", san.overwide_declarations),
    ] {
        m.push(
            "gsnp_sanitizer_findings_total",
            "Dynamic-checker findings by check (zero unless --sanitize)",
            Counter,
            &[("check", check)],
            v as f64,
        );
    }

    // ---- static contract proofs ----
    // One counter per verdict: `verified` launches ran on a proved
    // contract, `refuted` were rejected before execution, `assumed` ran
    // with no contract at all (dynamic checking only).
    let proofs = stats.contracts.totals();
    for (result, v) in [
        ("verified", proofs.verified),
        ("refuted", proofs.refuted),
        ("assumed", proofs.assumed),
    ] {
        m.push(
            "gsnp_contract_checks_total",
            "Static access-contract checks by verdict (zero unless --contracts)",
            Counter,
            &[("result", result)],
            v as f64,
        );
    }

    // ---- multipass sort-class histogram (paper Fig. 7b) ----
    // Rendered cumulatively under the Prometheus `le` convention: the
    // per-site array-length distribution the multipass scheduler saw.
    let mut cumulative = 0u64;
    for class in &stats.sort_classes {
        cumulative += class.arrays;
        m.push(
            "gsnp_sort_arrays_bucket",
            "Per-site arrays by multipass size class (cumulative histogram)",
            Counter,
            &[("le", &class.le_label())],
            cumulative as f64,
        );
        m.push(
            "gsnp_sort_class_elements_total",
            "Real elements sorted per multipass size class",
            Counter,
            &[("class", &class.le_label())],
            class.elements as f64,
        );
        m.push(
            "gsnp_sort_class_padded_total",
            "Padded network elements charged per multipass size class",
            Counter,
            &[("class", &class.le_label())],
            class.padded as f64,
        );
    }

    m
}

fn push_stage(m: &mut MetricsSnapshot, labels: &[(&str, &str)], st: &StageStats) {
    let mut with_state = |state: &str, v: f64| {
        let mut l: Vec<(&str, &str)> = labels.to_vec();
        l.push(("state", state));
        m.push(
            "gsnp_stage_seconds",
            "Busy/stall accounting per window-loop stage",
            MetricKind::Counter,
            &l,
            v,
        );
    };
    with_state("busy", st.busy);
    with_state("stall_in", st.stall_in);
    with_state("stall_out", st.stall_out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ComponentTimes, PipelineStats};
    use crate::stream::OverlapStats;

    fn empty_output() -> GsnpOutput {
        GsnpOutput {
            tables: Vec::new(),
            compressed: Vec::new(),
            times: ComponentTimes::default(),
            wall: ComponentTimes::default(),
            stats: PipelineStats {
                overlap: OverlapStats {
                    devices: vec![Default::default(); 2],
                    ..Default::default()
                },
                ledgers: vec![Default::default(); 2],
                kernel_launches: vec![gpu_sim::KernelTally {
                    name: "likelihood_comp_fused".into(),
                    launches: 3,
                    overhead_seconds: 1.5e-5,
                    native_launches: 1,
                    wall_seconds: 0.25,
                    wall_hist: Default::default(),
                }],
                ..Default::default()
            },
        }
    }

    #[test]
    fn snapshot_has_stable_names_and_per_device_labels() {
        let out = empty_output();
        let m = call_metrics(&out);
        assert_eq!(m.get("gsnp_windows_total", &[]), Some(0.0));
        assert_eq!(
            m.get("gsnp_lane_windows_total", &[("device", "1")]),
            Some(0.0)
        );
        assert_eq!(
            m.get(
                "gsnp_stage_seconds",
                &[("stage", "read"), ("state", "busy")]
            ),
            Some(0.0)
        );
        let text = m.render_text();
        assert!(text.contains("# TYPE gsnp_stage_seconds counter"));
        assert!(text.contains("gsnp_hw_counter_total{device=\"0\",counter=\"instructions\"}"));
        assert_eq!(
            m.get(
                "gsnp_launches_total",
                &[("kernel", "likelihood_comp_fused")]
            ),
            Some(3.0)
        );
        assert!(text.contains("gsnp_launch_overhead_seconds{kernel=\"likelihood_comp_fused\"}"));
        assert_eq!(
            m.get("gsnp_contract_checks_total", &[("result", "verified")]),
            Some(0.0)
        );
        assert!(text.contains("gsnp_sanitizer_findings_total{check=\"conformance_escape\"}"));
    }

    #[test]
    fn contract_tallies_flow_into_the_proof_counters() {
        let mut out = empty_output();
        let tally = out
            .stats
            .contracts
            .per_kernel
            .entry("likelihood_comp_fused".into())
            .or_default();
        tally.verified = 5;
        tally.refuted = 1;
        let m = call_metrics(&out);
        assert_eq!(
            m.get("gsnp_contract_checks_total", &[("result", "verified")]),
            Some(5.0)
        );
        assert_eq!(
            m.get("gsnp_contract_checks_total", &[("result", "refuted")]),
            Some(1.0)
        );
        assert_eq!(
            m.get("gsnp_contract_checks_total", &[("result", "assumed")]),
            Some(0.0)
        );
    }

    #[test]
    fn table_upload_bytes_scale_with_devices_not_samples() {
        let mut out = empty_output();
        out.stats.samples = 8;
        out.stats.table_bytes = 1_000;
        let m = call_metrics(&out);
        assert_eq!(m.get("gsnp_samples", &[]), Some(8.0));
        // Two ledgers in the fixture: 2 uploads, regardless of samples.
        assert_eq!(m.get("gsnp_table_upload_bytes_total", &[]), Some(2_000.0));
    }

    #[test]
    fn cohort_snapshot_carries_per_sample_series() {
        use crate::cohort::SampleOutput;
        let single = empty_output();
        let out = CohortOutput {
            samples: vec![
                SampleOutput {
                    name: "s0".into(),
                    tables: Vec::new(),
                    compressed: vec![0u8; 64],
                    snp_count: 7,
                    gated_nocalls: 2,
                    forced_nocalls: 1,
                },
                SampleOutput {
                    name: "s1".into(),
                    tables: Vec::new(),
                    compressed: vec![0u8; 32],
                    snp_count: 3,
                    gated_nocalls: 0,
                    forced_nocalls: 0,
                },
            ],
            stats: single.stats,
            times: single.times,
            wall: single.wall,
            noisy_sites: vec![42, 99],
        };
        let m = cohort_metrics(&out);
        assert_eq!(
            m.get("gsnp_sample_snp_calls_total", &[("sample", "s0")]),
            Some(7.0)
        );
        assert_eq!(
            m.get(
                "gsnp_sample_nocalls_total",
                &[("sample", "s0"), ("reason", "gated")]
            ),
            Some(2.0)
        );
        assert_eq!(
            m.get(
                "gsnp_sample_nocalls_total",
                &[("sample", "s1"), ("reason", "bad_site")]
            ),
            Some(0.0)
        );
        assert_eq!(
            m.get("gsnp_sample_output_bytes", &[("sample", "s1")]),
            Some(32.0)
        );
        // Run totals cover the whole cohort under the single-run names.
        assert_eq!(m.get("gsnp_compressed_output_bytes", &[]), Some(96.0));
        assert_eq!(m.get("gsnp_noisy_sites", &[]), Some(2.0));
        let text = m.render_text();
        assert!(text.contains("gsnp_sample_snp_calls_total{sample=\"s1\"}"));
    }

    #[test]
    fn exposition_has_unique_headers_and_histogram_families() {
        use crate::cohort::SampleOutput;
        let mut single = empty_output();
        single.stats.hists.window.record(1e-3);
        single.stats.kernel_launches[0].wall_hist.record(2e-4);
        let out = CohortOutput {
            samples: vec![SampleOutput {
                name: "s0".into(),
                tables: Vec::new(),
                compressed: Vec::new(),
                snp_count: 0,
                gated_nocalls: 0,
                forced_nocalls: 0,
            }],
            stats: single.stats,
            times: single.times,
            wall: single.wall,
            noisy_sites: Vec::new(),
        };
        let text = cohort_metrics(&out).render_text();
        assert!(text.contains("gsnp_build_info{"), "{text}");
        assert!(text.contains("# TYPE gsnp_window_seconds histogram"));
        assert!(text
            .contains("gsnp_kernel_launch_wall_seconds_bucket{kernel=\"likelihood_comp_fused\","));
        assert!(text.contains("gsnp_stage_busy_seconds_bucket{stage=\"device\","));
        // Every # HELP / # TYPE name appears exactly once in the merged
        // cohort+core exposition.
        for marker in ["# HELP", "# TYPE"] {
            let mut names: Vec<&str> = text
                .lines()
                .filter(|l| l.starts_with(marker))
                .map(|l| l.split(' ').nth(2).unwrap())
                .collect();
            let total = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(total, names.len(), "duplicate {marker} header");
        }
    }

    #[test]
    fn component_times_cover_both_clocks() {
        let mut out = empty_output();
        out.times.posterior = 1.5;
        out.wall.posterior = 0.5;
        let m = call_metrics(&out);
        assert_eq!(
            m.get(
                "gsnp_component_seconds",
                &[("component", "posterior"), ("clock", "device")]
            ),
            Some(1.5)
        );
        assert_eq!(
            m.get(
                "gsnp_component_seconds",
                &[("component", "posterior"), ("clock", "wall")]
            ),
            Some(0.5)
        );
    }
}
