//! Score tables: `p_matrix`, `new_p_matrix`, and `log_table`.
//!
//! * [`PMatrix`] — the recalibrated per-base probability matrix produced
//!   by the `cal_p_matrix` workflow component: `P(observed base | true
//!   allele, adjusted quality, read coordinate)`, estimated empirically
//!   from the whole input with quality-model pseudocounts.
//! * [`NewPMatrix`] — §IV-D: the 10×-expanded table holding, for every
//!   `(quality, coordinate, observed base)` cell, the ten precomputed
//!   `log10(0.5·p(allele1) + 0.5·p(allele2))` genotype values. One random
//!   read replaces two random reads plus a `log10` per `likely_update`.
//! * [`LogTable`] — §IV-G: base-10 logarithms of the integers 0–64,
//!   computed once on the host and shared by every execution path, so CPU
//!   and simulated-GPU results are bit-identical.

use std::sync::Arc;

use seqio::fasta::Reference;
use seqio::soap::AlignedRead;

use crate::model::{ModelParams, GENOTYPES, NUM_GENOTYPES};

/// Quality-score dimension (6 bits).
pub const Q_DIM: usize = 64;
/// Read-coordinate dimension (8 bits).
pub const COORD_DIM: usize = 256;

/// Base-10 logarithms of small integers, host-computed once (§IV-G).
#[derive(Debug, Clone, PartialEq)]
pub struct LogTable {
    values: [f64; 65],
}

impl LogTable {
    /// Build the table (`log10 0` is stored as 0 — the callers clamp the
    /// argument to ≥ 1).
    pub fn new() -> LogTable {
        let mut values = [0.0f64; 65];
        for (i, v) in values.iter_mut().enumerate().skip(1) {
            *v = (i as f64).log10();
        }
        LogTable { values }
    }

    /// `log10(k)` for integer `k ≤ 64`.
    #[inline(always)]
    pub fn log10_int(&self, k: usize) -> f64 {
        self.values[k]
    }

    /// Raw table contents (uploaded to constant memory by the kernels).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

impl Default for LogTable {
    fn default() -> Self {
        Self::new()
    }
}

/// The recalibration matrix: `P(observed base | allele, quality, coord)`.
///
/// Indexed as the paper's Algorithm 2 packs it:
/// `idx = q << 12 | coord << 4 | allele << 2 | base`.
#[derive(Debug, Clone, PartialEq)]
pub struct PMatrix {
    values: Vec<f64>,
}

/// Flat index into [`PMatrix`].
#[inline(always)]
pub fn p_index(q: u8, coord: u8, allele: u8, base: u8) -> usize {
    (usize::from(q) << 12)
        | (usize::from(coord) << 4)
        | (usize::from(allele) << 2)
        | usize::from(base)
}

impl PMatrix {
    /// Total number of entries (`64 × 256 × 4 × 4`).
    pub const LEN: usize = Q_DIM * COORD_DIM * 4 * 4;

    /// The quality model's prior probability of observing `base` given
    /// `allele` at Phred quality `q`, with `e = 10^(−q/10)` modelled as
    /// "on error, the observation is uniform over all four bases":
    /// `1 − 3e/4` on a match, `e/4` otherwise. This keeps every entry
    /// strictly positive even at `q = 0`.
    pub fn prior_prob(q: u8, allele: u8, base: u8) -> f64 {
        let e = 10f64.powf(-f64::from(q) / 10.0);
        if allele == base {
            1.0 - e * (3.0 / 4.0)
        } else {
            e / 4.0
        }
    }

    /// Calibrate from the full input (the `cal_p_matrix` component): count
    /// `(quality, coord, reference allele, observed base)` co-occurrences
    /// over every aligned base, then blend with the quality-model prior
    /// using `params.pseudocount` pseudo-observations.
    pub fn calibrate<'a>(
        reads: impl IntoIterator<Item = &'a AlignedRead>,
        reference: &Reference,
        params: &ModelParams,
    ) -> PMatrix {
        let mut counts = vec![0f64; Self::LEN];
        for read in reads {
            let end = ((read.pos as usize) + read.len()).min(reference.len());
            for site in read.pos as usize..end {
                let r = reference.seq[site];
                if r >= 4 {
                    continue; // unknown reference: no truth label
                }
                let offset = site - read.pos as usize;
                let (base, qual, coord) = read.obs_at(offset);
                counts[p_index(qual, coord, r, base.code())] += 1.0;
            }
        }
        let mut values = vec![0f64; Self::LEN];
        for q in 0..Q_DIM {
            for coord in 0..COORD_DIM {
                let (q, coord) = (q as u8, coord as u8);
                for allele in 0..4u8 {
                    let idx0 = p_index(q, coord, allele, 0);
                    let total: f64 = (0..4).map(|b| counts[idx0 + b]).sum();
                    for base in 0..4u8 {
                        let prior = Self::prior_prob(q, allele, base);
                        let v = (counts[idx0 + base as usize] + params.pseudocount * prior)
                            / (total + params.pseudocount);
                        values[idx0 + base as usize] = v.clamp(1e-12, 1.0);
                    }
                }
            }
        }
        PMatrix { values }
    }

    /// An uncalibrated matrix holding the pure quality-model prior —
    /// useful for tests and for running without a calibration pass.
    pub fn from_prior() -> PMatrix {
        let mut values = vec![0f64; Self::LEN];
        for q in 0..Q_DIM {
            for coord in 0..COORD_DIM {
                let (q, coord) = (q as u8, coord as u8);
                for allele in 0..4u8 {
                    for base in 0..4u8 {
                        values[p_index(q, coord, allele, base)] =
                            Self::prior_prob(q, allele, base).clamp(1e-12, 1.0);
                    }
                }
            }
        }
        PMatrix { values }
    }

    /// Probability lookup.
    #[inline(always)]
    pub fn get(&self, q: u8, coord: u8, allele: u8, base: u8) -> f64 {
        self.values[p_index(q, coord, allele, base)]
    }

    /// Flat lookup by precomputed index.
    #[inline(always)]
    pub fn get_flat(&self, idx: usize) -> f64 {
        self.values[idx]
    }

    /// Raw values (uploaded to device global memory by the kernels).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

/// The paper's Algorithm 2 (`likely_update`): the per-base log-likelihood
/// contribution to genotype `(allele1, allele2)`, computed from two
/// `p_matrix` lookups and one `log10`. The reference implementation the
/// precomputed table must match bit for bit.
#[inline(always)]
pub fn likely_update(p: &PMatrix, q_adjusted: u8, coord: u8, base: u8, a1: u8, a2: u8) -> f64 {
    let p1 = p.get_flat(p_index(q_adjusted, coord, a1, base));
    let p2 = p.get_flat(p_index(q_adjusted, coord, a2, base));
    (0.5 * p1 + 0.5 * p2).log10()
}

/// The 10×-expanded precomputed score table (§IV-D).
///
/// Indexed as Algorithm 3: `idx = (q << 10 | coord << 2 | base) * 10 + n`
/// where `n` is the genotype index.
#[derive(Debug, Clone, PartialEq)]
pub struct NewPMatrix {
    values: Vec<f64>,
}

/// Flat cell index (before the ×10 genotype expansion).
#[inline(always)]
pub fn new_p_cell(q: u8, coord: u8, base: u8) -> usize {
    (usize::from(q) << 10) | (usize::from(coord) << 2) | usize::from(base)
}

impl NewPMatrix {
    /// Number of `(q, coord, base)` cells.
    pub const CELLS: usize = Q_DIM * COORD_DIM * 4;

    /// Precompute from a calibrated [`PMatrix`]. Every entry is produced
    /// by the *same* floating-point expression [`likely_update`] evaluates,
    /// so replacing the on-the-fly computation with the table lookup is a
    /// bit-exact transformation.
    pub fn precompute(p: &PMatrix) -> NewPMatrix {
        let mut values = vec![0f64; Self::CELLS * NUM_GENOTYPES];
        for q in 0..Q_DIM {
            for coord in 0..COORD_DIM {
                let (q, coord) = (q as u8, coord as u8);
                for base in 0..4u8 {
                    let cell = new_p_cell(q, coord, base);
                    for (n, &(a1, a2)) in GENOTYPES.iter().enumerate() {
                        values[cell * NUM_GENOTYPES + n] = likely_update(p, q, coord, base, a1, a2);
                    }
                }
            }
        }
        NewPMatrix { values }
    }

    /// Algorithm 3: one lookup replaces two reads and a `log10`.
    #[inline(always)]
    pub fn get(&self, q_adjusted: u8, coord: u8, base: u8, n: usize) -> f64 {
        self.values[new_p_cell(q_adjusted, coord, base) * NUM_GENOTYPES + n]
    }

    /// Raw values (uploaded to device global memory).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Size in bytes (10× the `p_matrix`, as §IV-D notes).
    pub fn size_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

/// The full reference-shaped table set — calibrated `p_matrix`, its
/// precomputed `new_p_matrix` expansion, and the shared `log_table` —
/// computed once and injectable into any number of pipeline runs.
///
/// This is the cohort pipeline's amortization seam: every table here
/// depends on the *input distribution*, not on which sample a window
/// came from, so a cohort calibrates once over the pooled reads and
/// every sample's windows score against the same bits. Injecting a
/// `SharedTables` into [`crate::pipeline::GsnpConfig::shared_tables`]
/// skips the per-run `cal_p_matrix` + `precompute` work and is also what
/// defines cohort/single-run parity: a single-sample run given the
/// cohort's tables produces byte-identical output to that sample's lane
/// of the cohort run.
#[derive(Debug, Clone)]
pub struct SharedTables {
    /// Calibrated recalibration matrix.
    pub p_matrix: PMatrix,
    /// Its 10×-expanded precomputed score table.
    pub new_p: NewPMatrix,
    /// Host log table (ref-counted into every device upload).
    pub log_table: Arc<LogTable>,
}

impl SharedTables {
    /// Calibrate from one sample's reads (the single-run path).
    pub fn calibrate(
        reads: &[AlignedRead],
        reference: &Reference,
        params: &ModelParams,
    ) -> SharedTables {
        Self::calibrate_pooled([reads], reference, params)
    }

    /// Calibrate from a cohort's pooled reads: the co-occurrence counts of
    /// `cal_p_matrix` accumulate over every sample's alignments (chained
    /// zero-copy — no concatenated buffer is built), then the expansion
    /// tables are computed once. Per-sample error structure is averaged
    /// into one matrix, exactly as one recalibration pass over a merged
    /// alignment file would.
    pub fn calibrate_pooled<'a>(
        sample_reads: impl IntoIterator<Item = &'a [AlignedRead]>,
        reference: &Reference,
        params: &ModelParams,
    ) -> SharedTables {
        let p_matrix = PMatrix::calibrate(sample_reads.into_iter().flatten(), reference, params);
        let new_p = NewPMatrix::precompute(&p_matrix);
        SharedTables {
            p_matrix,
            new_p,
            log_table: Arc::new(LogTable::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio::synth::{Dataset, SynthConfig};

    #[test]
    fn log_table_values() {
        let lt = LogTable::new();
        assert_eq!(lt.log10_int(1), 0.0);
        assert!((lt.log10_int(10) - 1.0).abs() < 1e-12);
        assert!((lt.log10_int(2) - 2f64.log10()).abs() < 1e-15);
        assert_eq!(lt.as_slice().len(), 65);
    }

    #[test]
    fn p_index_matches_paper_packing() {
        // Algorithm 2: p = q<<12 | coord<<4 | allele<<2 | base.
        assert_eq!(p_index(0, 0, 0, 0), 0);
        assert_eq!(p_index(1, 0, 0, 0), 1 << 12);
        assert_eq!(p_index(0, 1, 0, 0), 1 << 4);
        assert_eq!(p_index(0, 0, 1, 0), 1 << 2);
        assert_eq!(
            p_index(63, 255, 3, 3),
            (63 << 12) | (255 << 4) | (3 << 2) | 3
        );
        assert_eq!(PMatrix::LEN, 1 << 18);
    }

    #[test]
    fn prior_matrix_is_a_distribution_over_bases() {
        let p = PMatrix::from_prior();
        for q in [0u8, 10, 40, 63] {
            for allele in 0..4u8 {
                let total: f64 = (0..4).map(|b| p.get(q, 0, allele, b)).sum();
                assert!((total - 1.0).abs() < 1e-6, "q={q} allele={allele}: {total}");
            }
        }
    }

    #[test]
    fn prior_match_probability_grows_with_quality() {
        let p = PMatrix::from_prior();
        assert!(p.get(40, 0, 2, 2) > p.get(10, 0, 2, 2));
        assert!(p.get(40, 0, 2, 0) < p.get(10, 0, 2, 0));
    }

    #[test]
    fn calibration_learns_error_structure() {
        let d = Dataset::generate(SynthConfig::tiny(31));
        let params = ModelParams::default();
        let p = PMatrix::calibrate(&d.reads, &d.reference, &params);
        // Matches dominate mismatches at every common quality.
        for q in [30u8, 34, 38] {
            for allele in 0..4u8 {
                let m = p.get(q, 5, allele, allele);
                for b in 0..4u8 {
                    if b != allele {
                        assert!(m > p.get(q, 5, allele, b), "q={q} a={allele} b={b}");
                    }
                }
            }
        }
        // Cells never observed fall back to the prior.
        let prior = PMatrix::from_prior();
        assert_eq!(p.get(63, 255, 0, 0), prior.get(63, 255, 0, 0));
    }

    #[test]
    fn calibration_is_deterministic() {
        let d = Dataset::generate(SynthConfig::tiny(32));
        let params = ModelParams::default();
        let a = PMatrix::calibrate(&d.reads, &d.reference, &params);
        let b = PMatrix::calibrate(&d.reads, &d.reference, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn new_p_matrix_is_bit_exact_with_likely_update() {
        let d = Dataset::generate(SynthConfig::tiny(33));
        let p = PMatrix::calibrate(&d.reads, &d.reference, &ModelParams::default());
        let np = NewPMatrix::precompute(&p);
        for q in [0u8, 17, 40, 63] {
            for coord in [0u8, 49, 255] {
                for base in 0..4u8 {
                    for (n, &(a1, a2)) in GENOTYPES.iter().enumerate() {
                        let direct = likely_update(&p, q, coord, base, a1, a2);
                        let table = np.get(q, coord, base, n);
                        assert_eq!(direct.to_bits(), table.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn pooled_calibration_over_one_sample_matches_single() {
        let d = Dataset::generate(SynthConfig::tiny(34));
        let params = ModelParams::default();
        let single = SharedTables::calibrate(&d.reads, &d.reference, &params);
        let direct = PMatrix::calibrate(&d.reads, &d.reference, &params);
        assert_eq!(single.p_matrix, direct);
        assert_eq!(single.new_p, NewPMatrix::precompute(&direct));
    }

    #[test]
    fn pooled_calibration_chains_samples_deterministically() {
        let a = Dataset::generate(SynthConfig::tiny(35));
        let b = Dataset::generate(SynthConfig::tiny(36));
        let params = ModelParams::default();
        let pooled = SharedTables::calibrate_pooled(
            [a.reads.as_slice(), b.reads.as_slice()],
            &a.reference,
            &params,
        );
        let again = SharedTables::calibrate_pooled(
            [a.reads.as_slice(), b.reads.as_slice()],
            &a.reference,
            &params,
        );
        assert_eq!(pooled.p_matrix, again.p_matrix);
        // Pooling genuinely mixes both samples: the result differs from
        // either sample calibrated alone.
        let solo = PMatrix::calibrate(&a.reads, &a.reference, &params);
        assert_ne!(pooled.p_matrix, solo);
    }

    #[test]
    fn new_p_matrix_is_ten_times_larger() {
        let p = PMatrix::from_prior();
        let np = NewPMatrix::precompute(&p);
        assert_eq!(np.size_bytes(), 10 * Q_DIM * COORD_DIM * 4 * 8);
        assert_eq!(np.size_bytes(), p.size_bytes() * 10 / 4);
        // (p_matrix has a 4-wide base axis *and* a 4-wide allele axis; the
        // expansion replaces the allele axis with the 10 genotypes.)
    }
}
