//! Likelihood calculation (§IV): the pipeline's dominant component.
//!
//! Host-side reference implementations:
//!
//! * [`likelihood_dense_site`] — the paper's Algorithm 1: scan the full
//!   dense `base_occ` matrix in canonical order (SOAPsnp's inner loop).
//! * [`likelihood_sparse_site_pmatrix`] — Algorithm 4 with the original
//!   Algorithm-2 math (two `p_matrix` reads + a `log10` per genotype).
//! * [`likelihood_sparse_site`] — Algorithm 4 with the Algorithm-3
//!   optimized math (one `new_p_matrix` read per genotype).
//!
//! All three produce **bit-identical** `type_likely` vectors for the same
//! site (property-tested), which is the §IV-G consistency requirement.
//!
//! Device-side: [`likelihood_sort_gpu`] (the multipass sorting network)
//! and [`likelihood_comp_gpu`] with the four [`KernelVariant`]s of
//! Fig. 8 / Table III, plus the dense strawman [`likelihood_dense_gpu`]
//! of Fig. 5.

use std::sync::Arc;

use gpu_sim::{
    AccessContract, BlockInterval, ComputeBackend, ConstBuffer, Device, DeviceGroup, Footprint,
    GlobalBuffer, LaunchStats,
};
use sortnet::multipass::{multipass_sort_into, MultipassReport, MultipassScratch};

use crate::baseword;
use crate::counting::{base_occ_index, SparseWindow, SITE_CELLS};
use crate::model::{adjust, SiteSummary, NUM_GENOTYPES};
use crate::tables::{likely_update, new_p_cell, p_index, LogTable, NewPMatrix, PMatrix};

/// Sites processed per thread block by the likelihood kernels.
pub const SITES_PER_BLOCK: usize = 256;

// ---------------------------------------------------------------------
// Host reference implementations
// ---------------------------------------------------------------------

/// Algorithm 1: likelihood of one site from its dense `base_occ` matrix.
///
/// The canonical iteration order is base ↑, score ↓ (from `QUAL_MAX`
/// down to 0), coord ↑, strand ↑, with the dependency counter reset per
/// base and the quality adjustment applied per *occurrence*. The scan
/// covers the full coordinate axis (256), as the paper's Formula (1)
/// assumes — every one of the 131,072 cells is read. The inner two loops
/// are a single contiguous 512-byte row (`coord`/`strand` are the low
/// index bits), so the zero-skipping pass runs at memory-stream speed,
/// which is what makes this baseline memory-bound like SOAPsnp.
pub fn likelihood_dense_site(occ: &[u8], p: &PMatrix, lt: &LogTable) -> [f64; NUM_GENOTYPES] {
    debug_assert_eq!(occ.len(), SITE_CELLS);
    const ROW: usize = 2 * crate::tables::COORD_DIM;
    let mut type_likely = [0f64; NUM_GENOTYPES];
    let mut dep_count = [0u16; ROW];
    for base in 0..4u8 {
        dep_count.fill(0);
        for score in (0..=baseword::QUAL_MAX).rev() {
            let row0 = base_occ_index(base, score, 0, 0);
            let row = &occ[row0..row0 + ROW];
            // Zero-skip 64 cells at a time: the row is ~99.9% zeros, so
            // the scan runs at memory-stream speed, as Formula (1) assumes.
            for (c64, big) in row.chunks_exact(64).enumerate() {
                let mut any = 0u64;
                for w in big.chunks_exact(8) {
                    any |= u64::from_le_bytes(w.try_into().expect("8 bytes"));
                }
                if any == 0 {
                    continue;
                }
                for (k8, &count) in big.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let j = c64 * 64 + k8;
                    let coord = (j >> 1) as u8;
                    let strand = (j & 1) as u8;
                    for _k in 0..count {
                        let slot =
                            usize::from(strand) * crate::tables::COORD_DIM + usize::from(coord);
                        dep_count[slot] += 1;
                        let q_adj = adjust(score, dep_count[slot], lt);
                        let mut n = 0usize;
                        for a1 in 0..4u8 {
                            for a2 in a1..4u8 {
                                type_likely[n] += likely_update(p, q_adj, coord, base, a1, a2);
                                n += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    type_likely
}

/// Algorithm 4 with Algorithm-2 math: scan a canonically-sorted
/// `base_word` array, computing each genotype term from two `p_matrix`
/// reads and a `log10` (the *baseline* kernel's arithmetic).
pub fn likelihood_sparse_site_pmatrix(
    words_sorted: &[u32],
    read_len: usize,
    p: &PMatrix,
    lt: &LogTable,
) -> [f64; NUM_GENOTYPES] {
    let mut type_likely = [0f64; NUM_GENOTYPES];
    let mut dep_count = vec![0u16; 2 * read_len];
    let mut last_base = 0u8;
    for &w in words_sorted {
        let (base, score, coord, strand, _uniq) = baseword::unpack(w);
        if base > last_base {
            dep_count.fill(0);
            last_base = base;
        }
        let slot = usize::from(strand) * read_len + usize::from(coord);
        dep_count[slot] += 1;
        let q_adj = adjust(score, dep_count[slot], lt);
        let mut n = 0usize;
        for a1 in 0..4u8 {
            for a2 in a1..4u8 {
                type_likely[n] += likely_update(p, q_adj, coord, base, a1, a2);
                n += 1;
            }
        }
    }
    type_likely
}

/// Algorithm 4 with Algorithm-3 math: one `new_p_matrix` lookup per
/// genotype (the *optimized* arithmetic; GSNP and GSNP_CPU use this).
pub fn likelihood_sparse_site(
    words_sorted: &[u32],
    read_len: usize,
    np: &NewPMatrix,
    lt: &LogTable,
) -> [f64; NUM_GENOTYPES] {
    let mut type_likely = [0f64; NUM_GENOTYPES];
    let mut dep_count = vec![0u16; 2 * read_len];
    let mut last_base = 0u8;
    for &w in words_sorted {
        let (base, score, coord, strand, _uniq) = baseword::unpack(w);
        if base > last_base {
            dep_count.fill(0);
            last_base = base;
        }
        let slot = usize::from(strand) * read_len + usize::from(coord);
        dep_count[slot] += 1;
        let q_adj = adjust(score, dep_count[slot], lt);
        for (n, tl) in type_likely.iter_mut().enumerate() {
            *tl += np.get(q_adj, coord, base, n);
        }
    }
    type_likely
}

/// `likelihood_sort` on the host (GSNP_CPU): per-site unstable sort —
/// the quicksort counterpart of Fig. 6.
pub fn sort_sparse_cpu(sw: &mut SparseWindow) {
    for &(off, len) in &sw.spans {
        sw.words[off..off + len].sort_unstable();
    }
}

// ---------------------------------------------------------------------
// Device tables
// ---------------------------------------------------------------------

/// Score tables resident in simulated device memory.
pub struct DeviceTables {
    /// `p_matrix` in global memory (8 MB-class: too big for shared or
    /// constant memory — §IV-D).
    pub p_matrix: GlobalBuffer<f64>,
    /// `new_p_matrix` in global memory.
    pub new_p: GlobalBuffer<f64>,
    /// `log_table` in constant memory (65 doubles, trivially fits).
    pub log_table: ConstBuffer<f64>,
    host_log: Arc<LogTable>,
    /// Host mirror of `new_p` (same values, same bits): the native
    /// backend's fast path reads genotype rows from it as plain `f64`
    /// slices, which the auto-vectorizer can chew through — the device
    /// buffer's atomic cells cannot.
    host_new_p: Arc<[f64]>,
}

impl DeviceTables {
    /// Upload the three tables. Convenience wrapper over
    /// [`DeviceTables::upload_shared`] that clones the log table once into
    /// an [`Arc`].
    pub fn upload(dev: &Device, p: &PMatrix, np: &NewPMatrix, lt: &LogTable) -> DeviceTables {
        Self::upload_shared(dev, p, np, &Arc::new(lt.clone()))
    }

    /// Upload the three tables, sharing the host log table by reference
    /// count — repeated uploads (benchmark repetitions, per-run pipelines)
    /// duplicate nothing host-side.
    pub fn upload_shared(
        dev: &Device,
        p: &PMatrix,
        np: &NewPMatrix,
        lt: &Arc<LogTable>,
    ) -> DeviceTables {
        DeviceTables {
            p_matrix: dev.upload(p.as_slice()),
            new_p: dev.upload(np.as_slice()),
            log_table: dev.upload_const(lt.as_slice()),
            host_log: Arc::clone(lt),
            host_new_p: np.as_slice().into(),
        }
    }

    /// H2D bytes the upload represents (charged to `cal_p_matrix` time).
    pub fn upload_bytes(&self) -> u64 {
        (self.p_matrix.len() + self.new_p.len()) as u64 * 8 + self.log_table.len() as u64 * 8
    }

    /// Upload the tables to every device of a group from **one** host
    /// image (the matrices are borrowed, the log table is ref-counted — no
    /// per-device host-side rebuild), charging each device's ledger the
    /// PCIe cost of its own copy exactly once. Returns one `DeviceTables`
    /// per member, in device order.
    pub fn upload_group(
        group: &DeviceGroup,
        p: &PMatrix,
        np: &NewPMatrix,
        lt: &Arc<LogTable>,
    ) -> Vec<DeviceTables> {
        group
            .devices()
            .iter()
            .map(|dev| {
                let tables = Self::upload_shared(dev, p, np, lt);
                let mut stats = LaunchStats::default();
                dev.charge_h2d(&mut stats, tables.upload_bytes());
                tables
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Device kernels
// ---------------------------------------------------------------------

/// The four `likelihood_comp` implementations of Fig. 8 / Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// `p_matrix` math, `type_likely` in global memory.
    Baseline,
    /// `p_matrix` math, `type_likely` in shared memory.
    WithShared,
    /// `new_p_matrix` math, `type_likely` in global memory.
    WithNewTable,
    /// `new_p_matrix` math, `type_likely` in shared memory (GSNP).
    Optimized,
}

impl KernelVariant {
    /// All four variants in the paper's presentation order.
    pub const ALL: [KernelVariant; 4] = [
        KernelVariant::Baseline,
        KernelVariant::WithShared,
        KernelVariant::WithNewTable,
        KernelVariant::Optimized,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            KernelVariant::Baseline => "baseline",
            KernelVariant::WithShared => "w/ shared",
            KernelVariant::WithNewTable => "w/ new table",
            KernelVariant::Optimized => "optimized",
        }
    }

    fn uses_shared(self) -> bool {
        matches!(self, KernelVariant::WithShared | KernelVariant::Optimized)
    }

    fn uses_new_table(self) -> bool {
        matches!(self, KernelVariant::WithNewTable | KernelVariant::Optimized)
    }
}

/// `likelihood_sort` on the device: the multipass bitonic sorting network
/// over every site's `base_word` array.
pub fn likelihood_sort_gpu<B: ComputeBackend>(
    dev: &B,
    words: &GlobalBuffer<u32>,
    spans: &[(usize, usize)],
) -> MultipassReport {
    let mut scratch = MultipassScratch::default();
    likelihood_sort_gpu_into(dev, words, spans, &mut scratch);
    scratch.report().clone()
}

/// [`likelihood_sort_gpu`] with caller-owned scratch (the window loop's
/// allocation-free path); the report lands in `scratch.report()`.
pub fn likelihood_sort_gpu_into<B: ComputeBackend>(
    dev: &B,
    words: &GlobalBuffer<u32>,
    spans: &[(usize, usize)],
    scratch: &mut MultipassScratch,
) {
    multipass_sort_into(dev, words, spans, scratch);
}

/// `likelihood_comp` on the device: one logical thread per site, blocks of
/// [`SITES_PER_BLOCK`]. Returns the per-site `type_likely` vectors and the
/// launch statistics.
///
/// The computation is bit-identical across variants and identical to the
/// host implementations; the variants differ in *where* `type_likely`
/// accumulates and *which* table supplies the per-genotype terms — which
/// is precisely what the Table III counters measure.
pub fn likelihood_comp_gpu<B: ComputeBackend>(
    dev: &B,
    variant: KernelVariant,
    words: &GlobalBuffer<u32>,
    spans: &[(usize, usize)],
    read_len: usize,
    tables: &DeviceTables,
) -> (Vec<[f64; NUM_GENOTYPES]>, LaunchStats) {
    let mut out = Vec::new();
    let stats = likelihood_comp_gpu_into(dev, variant, words, spans, read_len, tables, &mut out);
    (out, stats)
}

/// [`likelihood_comp_gpu`] writing into a caller-owned vector: device
/// buffers come from the device's recycling pool and the result is read
/// back into `out` (cleared first, capacity reused) — no intermediate
/// flat copy. This is the window loop's steady-state path; with the pool
/// warmed it performs zero heap allocations.
pub fn likelihood_comp_gpu_into<B: ComputeBackend>(
    dev: &B,
    variant: KernelVariant,
    words: &GlobalBuffer<u32>,
    spans: &[(usize, usize)],
    read_len: usize,
    tables: &DeviceTables,
    out: &mut Vec<[f64; NUM_GENOTYPES]>,
) -> LaunchStats {
    comp_gpu_impl(dev, variant, words, spans, read_len, tables, out, None)
}

/// `u32` words per site in the fused kernel's summary output buffer:
/// `count_all[4] | count_uniq[4] | qual_sum[4] | depth`.
const SUMMARY_WORDS: usize = 13;

/// The counting→likelihood **fused** kernel: identical `type_likely`
/// output to [`likelihood_comp_gpu_into`] (bit for bit — the likelihood
/// arithmetic is untouched), but the same sorted scan also accumulates
/// each site's [`SiteSummary`] and writes it to a device buffer, read
/// back into `summaries`. Every summary reduction is order-independent
/// (saturating counts, a plain sum, a saturating depth), so accumulating
/// over the *sorted* words reproduces
/// [`SiteSummary::from_obs`] over the unsorted observations exactly —
/// eliminating the separate host-side counting traversal of the window.
#[allow(clippy::too_many_arguments)] // mirrors the unfused entry + one output
pub fn likelihood_comp_fused_gpu_into<B: ComputeBackend>(
    dev: &B,
    variant: KernelVariant,
    words: &GlobalBuffer<u32>,
    spans: &[(usize, usize)],
    read_len: usize,
    tables: &DeviceTables,
    out: &mut Vec<[f64; NUM_GENOTYPES]>,
    summaries: &mut Vec<SiteSummary>,
) -> LaunchStats {
    comp_gpu_impl(
        dev,
        variant,
        words,
        spans,
        read_len,
        tables,
        out,
        Some(summaries),
    )
}

#[allow(clippy::too_many_arguments)]
fn comp_gpu_impl<B: ComputeBackend>(
    dev: &B,
    variant: KernelVariant,
    words: &GlobalBuffer<u32>,
    spans: &[(usize, usize)],
    read_len: usize,
    tables: &DeviceTables,
    out: &mut Vec<[f64; NUM_GENOTYPES]>,
    summaries: Option<&mut Vec<SiteSummary>>,
) -> LaunchStats {
    let num_sites = spans.len();
    // Every logical type_likely slot is stored before it is loaded (the
    // global variants zero-initialize per site, the shared variants flush
    // whole tiles), so a dirty pooled acquire is byte-safe.
    let type_likely = dev.alloc_pooled_dirty::<f64>(num_sites * NUM_GENOTYPES);
    // Per-site dependency counters live in global memory (§IV-E): the
    // array is too large for shared memory and is touched an order of
    // magnitude less often than type_likely. The kernel needs the counters
    // zeroed — and resets every slot it touches before retiring — so the
    // buffer parks on the pool's zeroed free list and the next window's
    // acquire skips the O(sites × read_len) sweep entirely. This is the
    // paper's point that the sparse layout makes `recycle` trivial: the
    // dirtied set is the observation list, not the whole array.
    let mut dep_count_guard = dev.alloc_pooled::<u16>(num_sites * 2 * read_len);
    dep_count_guard.park_zeroed_on_drop();
    // Fused path only: per-site summary words, every slot stored before
    // the readback loads it.
    let summary_dev = summaries
        .as_ref()
        .map(|_| dev.alloc_pooled_dirty::<u32>(num_sites * SUMMARY_WORDS));
    let grid = num_sites.div_ceil(SITES_PER_BLOCK);
    let lt = &tables.host_log;
    let type_likely = &*type_likely;
    let dep_count = &*dep_count_guard;
    let summary_buf = summary_dev.as_deref();
    let name = if summary_buf.is_some() {
        "likelihood_comp_fused"
    } else {
        "likelihood_comp"
    };

    // Native fast path: the same per-site math as the instrumented body
    // below — identical unpack/segment-reset/adjust/accumulate sequence,
    // same `LogTable`, same f64 addition order, so the output bytes are
    // identical — but written as plain chunked loops over buffer spans.
    // The per-site dependency counters live in a block-local scratch array
    // (self-cleaning, like the pooled device buffer): purely per-site
    // state, so the native body never touches `dep_count` at all. Staging
    // the span's packed words once replaces the per-observation `ld_co`
    // dispatches, which is most of the native win here.
    let native_block = |first: usize, last: usize| {
        let mut wbuf: Vec<u32> = Vec::new();
        let mut dep = vec![0u16; 2 * read_len];
        for (site, &(off, len)) in spans.iter().enumerate().take(last).skip(first) {
            wbuf.resize(len, 0);
            words.read_span(off, &mut wbuf);
            let tl0 = site * NUM_GENOTYPES;
            let mut s_all = [0u32; 4];
            let mut s_uniq = [0u32; 4];
            let mut s_qual = [0u32; 4];
            let mut s_depth = 0u32;
            let mut acc = [0f64; NUM_GENOTYPES];
            let mut last_base = 0u8;
            let mut touched_from = 0usize;
            for i in 0..len {
                let (base, score, coord, strand, uniq) = baseword::unpack(wbuf[i]);
                if summary_buf.is_some() {
                    let b = usize::from(base);
                    s_all[b] += 1;
                    s_uniq[b] += u32::from(uniq);
                    s_qual[b] += u32::from(score);
                    s_depth += 1;
                }
                if base > last_base {
                    for &w in &wbuf[touched_from..i] {
                        let (_, _, tc, ts, _) = baseword::unpack(w);
                        dep[usize::from(ts) * read_len + usize::from(tc)] = 0;
                    }
                    touched_from = i;
                    last_base = base;
                }
                let slot = usize::from(strand) * read_len + usize::from(coord);
                let dc = dep[slot] + 1;
                dep[slot] = dc;
                let q_adj = adjust(score, dc, lt);
                let cell = new_p_cell(q_adj, coord, base) * NUM_GENOTYPES;
                let row = &tables.host_new_p[cell..cell + NUM_GENOTYPES];
                for (a, &t) in acc.iter_mut().zip(row) {
                    *a += t;
                }
            }
            for &w in &wbuf[touched_from..len] {
                let (_, _, tc, ts, _) = baseword::unpack(w);
                dep[usize::from(ts) * read_len + usize::from(tc)] = 0;
            }
            type_likely.write_span(tl0, &acc);
            if let Some(sbuf) = summary_buf {
                let mut sw = [0u32; SUMMARY_WORDS];
                sw[..4].copy_from_slice(&s_all);
                sw[4..8].copy_from_slice(&s_uniq);
                sw[8..12].copy_from_slice(&s_qual);
                sw[12] = s_depth;
                sbuf.write_span(site * SUMMARY_WORDS, &sw);
            }
        }
    };

    // Declared access pattern, built lazily (only when a checker is
    // attached): each block's `words` footprint is the hull of its sites'
    // spans — data-dependent, so it is materialized from the launch
    // parameters; the per-site outputs tile cleanly by construction.
    let contract = || {
        let mut word_ivs = Vec::with_capacity(grid);
        for b in 0..grid {
            let first = b * SITES_PER_BLOCK;
            let last = (first + SITES_PER_BLOCK).min(num_sites);
            let (mut lo, mut hi) = (usize::MAX, 0usize);
            for &(off, len) in &spans[first..last] {
                if len > 0 {
                    lo = lo.min(off);
                    hi = hi.max(off + len);
                }
            }
            if hi > lo {
                word_ivs.push(BlockInterval { block: b, lo, hi });
            }
        }
        let mut c = AccessContract::new()
            .read(words, Footprint::per_block(word_ivs))
            .read_write(
                type_likely,
                Footprint::tiled(SITES_PER_BLOCK * NUM_GENOTYPES, num_sites * NUM_GENOTYPES),
            )
            .read_write(
                dep_count,
                Footprint::tiled(SITES_PER_BLOCK * 2 * read_len, num_sites * 2 * read_len),
            );
        c = if variant.uses_new_table() {
            c.read(&tables.new_p, Footprint::All)
        } else {
            c.read(&tables.p_matrix, Footprint::All)
        };
        if let Some(sbuf) = summary_buf {
            c = c.write(
                sbuf,
                Footprint::tiled(SITES_PER_BLOCK * SUMMARY_WORDS, num_sites * SUMMARY_WORDS),
            );
        }
        if variant.uses_shared() {
            c = c.shared::<f64>(NUM_GENOTYPES);
        }
        c
    };

    #[allow(clippy::needless_range_loop)] // kernel-style: site indexes several parallel arrays
    let stats = dev.launch_contracted(name, grid, contract, |ctx| {
        let first = ctx.block_idx() * SITES_PER_BLOCK;
        let last = (first + SITES_PER_BLOCK).min(num_sites);
        if ctx.is_native() && variant.uses_new_table() {
            native_block(first, last);
            return;
        }
        for site in first..last {
            let (off, len) = spans[site];
            let dep0 = site * 2 * read_len;
            let tl0 = site * NUM_GENOTYPES;
            // Per-site summary accumulators (registers; flushed once).
            let mut s_all = [0u32; 4];
            let mut s_uniq = [0u32; 4];
            let mut s_qual = [0u32; 4];
            let mut s_depth = 0u32;

            // type_likely accumulator: shared tile or global slots.
            let mut shared_tl = if variant.uses_shared() {
                let mut t = ctx.shared_alloc::<f64>(NUM_GENOTYPES);
                t.fill_default(ctx);
                Some(t)
            } else {
                for n in 0..NUM_GENOTYPES {
                    ctx.st_rand(type_likely, tl0 + n, 0.0f64);
                }
                None
            };

            let mut last_base = 0u8;
            // Track which dep_count slots this base segment dirtied so the
            // reset touches only live entries (sparse recycle, §IV-B).
            let mut touched_from = off;
            for i in off..off + len {
                let w = ctx.ld_co(words, i);
                let (base, score, coord, strand, uniq) = baseword::unpack(w);
                ctx.add_inst(12); // field extraction + loop bookkeeping

                if summary_buf.is_some() {
                    // Counting fused into the same scan: the word is
                    // already in a register, so the summary costs only
                    // the accumulation arithmetic — no second traversal,
                    // no extra global loads.
                    let b = usize::from(base);
                    s_all[b] += 1;
                    s_uniq[b] += u32::from(uniq);
                    s_qual[b] += u32::from(score);
                    s_depth += 1;
                    ctx.add_inst(6);
                }

                if base > last_base {
                    for j in touched_from..i {
                        let (_, _, tc, ts, _) = baseword::unpack(ctx.ld_co(words, j));
                        let slot = dep0 + usize::from(ts) * read_len + usize::from(tc);
                        ctx.st_rand(dep_count, slot, 0u16);
                    }
                    touched_from = i;
                    last_base = base;
                }

                let slot = dep0 + usize::from(strand) * read_len + usize::from(coord);
                let dc = ctx.ld_rand(dep_count, slot) + 1;
                ctx.st_rand(dep_count, slot, dc);
                let q_adj = {
                    // adjust(): one constant-memory log read + arithmetic.
                    let k = dc.clamp(1, 64);
                    let penalty =
                        (10.0 * ctx.ld_const(&tables.log_table, k as usize)).round() as i32;
                    ctx.add_inst(8);
                    (i32::from(score) - penalty).max(0) as u8
                };
                debug_assert_eq!(q_adj, adjust(score, dc, lt));

                if variant.uses_new_table() {
                    let cell = new_p_cell(q_adj, coord, base) * NUM_GENOTYPES;
                    // The ten genotype terms are one consecutive new_p row;
                    // span ops tally the same counters as ten scalar
                    // accesses but do the bookkeeping once per row.
                    let mut terms = [0f64; NUM_GENOTYPES];
                    ctx.ld_rand_span(&tables.new_p, cell, &mut terms);
                    // Fixed per-update cost: addressing + accumulate +
                    // loop control (calibrated against Table III).
                    ctx.add_inst(20 * NUM_GENOTYPES as u64);
                    match shared_tl.as_mut() {
                        Some(tile) => tile.add_span(ctx, 0, &terms),
                        None => ctx.add_rand_span(type_likely, tl0, &terms),
                    }
                } else {
                    let mut n = 0usize;
                    for a1 in 0..4u8 {
                        for a2 in a1..4u8 {
                            let p1 = ctx.ld_rand(&tables.p_matrix, p_index(q_adj, coord, a1, base));
                            let p2 = ctx.ld_rand(&tables.p_matrix, p_index(q_adj, coord, a2, base));
                            let term = (0.5 * p1 + 0.5 * p2).log10();
                            // Fixed per-update cost (20) + the mul/add +
                            // log10 sequence the new table eliminates (8).
                            ctx.add_inst(28);
                            accumulate(ctx, type_likely, shared_tl.as_mut(), tl0, n, term);
                            n += 1;
                        }
                    }
                }
            }

            // Reset the final base segment's dep_count slots.
            for j in touched_from..off + len {
                let (_, _, tc, ts, _) = baseword::unpack(ctx.ld_co(words, j));
                let slot = dep0 + usize::from(ts) * read_len + usize::from(tc);
                ctx.st_rand(dep_count, slot, 0u16);
            }

            // Shared accumulators flush to global through coalesced writes.
            if let Some(tile) = shared_tl.take() {
                for n in 0..NUM_GENOTYPES {
                    let v = tile.read(ctx, n);
                    ctx.st_co(type_likely, tl0 + n, v);
                }
                ctx.shared_free(tile);
            }

            // Fused path: flush the site's summary words, coalesced.
            if let Some(sbuf) = summary_buf {
                let s0 = site * SUMMARY_WORDS;
                for b in 0..4 {
                    ctx.st_co(sbuf, s0 + b, s_all[b]);
                    ctx.st_co(sbuf, s0 + 4 + b, s_uniq[b]);
                    ctx.st_co(sbuf, s0 + 8 + b, s_qual[b]);
                }
                ctx.st_co(sbuf, s0 + 12, s_depth);
            }
        }
    });

    // Zero-copy readback: straight from the device cells into the
    // caller's vector, no intermediate flat Vec.
    out.clear();
    out.extend((0..num_sites).map(|s| {
        let mut row = [0f64; NUM_GENOTYPES];
        type_likely.read_span(s * NUM_GENOTYPES, &mut row);
        row
    }));
    if let (Some(summaries), Some(sbuf)) = (summaries, summary_buf) {
        // Saturate counts on readback: `from_obs` saturates at every +1,
        // which for monotone increments equals one clamp of the total.
        let sat = |v: u32| v.min(u32::from(u16::MAX)) as u16;
        summaries.clear();
        summaries.extend((0..num_sites).map(|s| {
            let mut sw = [0u32; SUMMARY_WORDS];
            sbuf.read_span(s * SUMMARY_WORDS, &mut sw);
            SiteSummary {
                count_all: std::array::from_fn(|b| sat(sw[b])),
                count_uniq: std::array::from_fn(|b| sat(sw[4 + b])),
                qual_sum: std::array::from_fn(|b| sw[8 + b]),
                depth: sat(sw[12]),
            }
        }));
    }
    stats
}

#[inline(always)]
fn accumulate(
    ctx: &mut gpu_sim::KernelCtx<'_, '_>,
    type_likely: &GlobalBuffer<f64>,
    shared: Option<&mut gpu_sim::SharedTile<f64>>,
    tl0: usize,
    n: usize,
    term: f64,
) {
    match shared {
        Some(tile) => {
            let cur = tile.read(ctx, n);
            tile.write(ctx, n, cur + term);
        }
        None => {
            let cur = ctx.ld_rand(type_likely, tl0 + n);
            ctx.st_rand(type_likely, tl0 + n, cur + term);
        }
    }
}

/// The Fig. 5 "GPU dense" strawman: one thread per site scanning the full
/// dense matrix. The matrix is laid out `[cell][site]` so warp lanes read
/// consecutive addresses (coalesced) — the representation is still 14–17×
/// slower than sparse because it must *move* three orders of magnitude
/// more bytes.
pub fn likelihood_dense_gpu<B: ComputeBackend>(
    dev: &B,
    occ: &GlobalBuffer<u8>,
    num_sites: usize,
    tables: &DeviceTables,
) -> (Vec<[f64; NUM_GENOTYPES]>, LaunchStats) {
    assert_eq!(
        occ.len(),
        num_sites * SITE_CELLS,
        "dense buffer size mismatch"
    );
    const ROW: usize = 2 * crate::tables::COORD_DIM;
    let type_likely: GlobalBuffer<f64> = dev.alloc(num_sites * NUM_GENOTYPES);
    let grid = num_sites.div_ceil(SITES_PER_BLOCK);

    // Dense scan: every block strides the whole transposed matrix (the
    // `[cell][site]` layout interleaves blocks at warp granularity), so
    // the read footprint is honestly the full buffer.
    let contract = || {
        AccessContract::new()
            .read(occ, Footprint::All)
            .read(&tables.new_p, Footprint::All)
            .write(
                &type_likely,
                Footprint::tiled(SITES_PER_BLOCK * NUM_GENOTYPES, num_sites * NUM_GENOTYPES),
            )
            .shared::<f64>(NUM_GENOTYPES)
    };
    let stats = dev.launch_contracted("likelihood_dense", grid, contract, |ctx| {
        let first = ctx.block_idx() * SITES_PER_BLOCK;
        let last = (first + SITES_PER_BLOCK).min(num_sites);
        for site in first..last {
            let mut tl = ctx.shared_alloc::<f64>(NUM_GENOTYPES);
            tl.fill_default(ctx);
            let mut dep_count = [0u16; ROW];
            for base in 0..4u8 {
                dep_count.fill(0);
                for score in (0..=baseword::QUAL_MAX).rev() {
                    let row0 = base_occ_index(base, score, 0, 0);
                    for j in 0..ROW {
                        // Transposed layout: [cell][site].
                        let count = ctx.ld_co(occ, (row0 + j) * num_sites + site);
                        if count == 0 {
                            continue;
                        }
                        let coord = (j >> 1) as u8;
                        let strand = (j & 1) as u8;
                        for _k in 0..count {
                            let slot =
                                usize::from(strand) * crate::tables::COORD_DIM + usize::from(coord);
                            dep_count[slot] += 1;
                            let k = dep_count[slot].clamp(1, 64);
                            let penalty =
                                (10.0 * ctx.ld_const(&tables.log_table, k as usize)).round() as i32;
                            ctx.add_inst(3);
                            let q_adj = (i32::from(score) - penalty).max(0) as u8;
                            let cell10 = new_p_cell(q_adj, coord, base) * NUM_GENOTYPES;
                            for n in 0..NUM_GENOTYPES {
                                let term = ctx.ld_rand(&tables.new_p, cell10 + n);
                                let cur = tl.read(ctx, n);
                                tl.write(ctx, n, cur + term);
                            }
                        }
                    }
                }
            }
            let tl0 = site * NUM_GENOTYPES;
            for n in 0..NUM_GENOTYPES {
                let v = tl.read(ctx, n);
                ctx.st_co(&type_likely, tl0 + n, v);
            }
            ctx.shared_free(tl);
        }
    });

    let flat = type_likely.to_vec();
    let out = (0..num_sites)
        .map(|s| {
            let mut a = [0f64; NUM_GENOTYPES];
            a.copy_from_slice(&flat[s * NUM_GENOTYPES..(s + 1) * NUM_GENOTYPES]);
            a
        })
        .collect();
    (out, stats)
}

/// Upload a dense window in the `[cell][site]` transposed layout
/// [`likelihood_dense_gpu`] expects.
pub fn upload_dense_transposed<B: ComputeBackend>(
    dev: &B,
    dense: &crate::counting::DenseWindow,
    num_sites: usize,
) -> GlobalBuffer<u8> {
    let mut host = vec![0u8; num_sites * SITE_CELLS];
    for site in 0..num_sites {
        let m = dense.site(site);
        for (cell, &v) in m.iter().enumerate() {
            if v != 0 {
                host[cell * num_sites + site] = v;
            }
        }
    }
    dev.upload(&host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::DenseWindow;
    use crate::model::ModelParams;
    use seqio::synth::{Dataset, SynthConfig};
    use seqio::window::WindowReader;

    struct Fixture {
        sw: SparseWindow,
        dense: DenseWindow,
        p: PMatrix,
        np: NewPMatrix,
        lt: LogTable,
        read_len: usize,
    }

    fn fixture(seed: u64) -> Fixture {
        let d = Dataset::generate(SynthConfig::tiny(seed));
        let read_len = d.config.read_len;
        let p = PMatrix::calibrate(&d.reads, &d.reference, &ModelParams::default());
        let np = NewPMatrix::precompute(&p);
        let mut wr = WindowReader::new(d.reads.iter().cloned().map(Ok), d.config.num_sites, 1000);
        let w = wr.next_window().unwrap().unwrap();
        let mut dense = DenseWindow::alloc(w.len());
        dense.count(&w);
        let mut sw = SparseWindow::count(&w);
        sort_sparse_cpu(&mut sw);
        Fixture {
            sw,
            dense,
            p,
            np,
            lt: LogTable::new(),
            read_len,
        }
    }

    #[test]
    fn sparse_equals_dense_bitwise() {
        let f = fixture(41);
        for site in 0..f.sw.num_sites() {
            let dense = likelihood_dense_site(f.dense.site(site), &f.p, &f.lt);
            let sparse = likelihood_sparse_site(f.sw.site_words(site), f.read_len, &f.np, &f.lt);
            for n in 0..NUM_GENOTYPES {
                assert_eq!(
                    dense[n].to_bits(),
                    sparse[n].to_bits(),
                    "site {site} genotype {n}: {} vs {}",
                    dense[n],
                    sparse[n]
                );
            }
        }
    }

    #[test]
    fn pmatrix_math_equals_new_table_math() {
        let f = fixture(42);
        for site in 0..f.sw.num_sites().min(200) {
            let words = f.sw.site_words(site);
            let a = likelihood_sparse_site_pmatrix(words, f.read_len, &f.p, &f.lt);
            let b = likelihood_sparse_site(words, f.read_len, &f.np, &f.lt);
            for n in 0..NUM_GENOTYPES {
                assert_eq!(a[n].to_bits(), b[n].to_bits(), "site {site}");
            }
        }
    }

    #[test]
    fn empty_site_has_zero_likelihood() {
        let f = fixture(43);
        let tl = likelihood_sparse_site(&[], f.read_len, &f.np, &f.lt);
        assert_eq!(tl, [0.0; NUM_GENOTYPES]);
    }

    #[test]
    fn all_kernel_variants_match_host_bitwise() {
        let f = fixture(44);
        let dev = Device::m2050();
        let tables = DeviceTables::upload(&dev, &f.p, &f.np, &f.lt);
        let words = dev.upload(&f.sw.words);
        let expected: Vec<[f64; NUM_GENOTYPES]> = (0..f.sw.num_sites())
            .map(|s| likelihood_sparse_site(f.sw.site_words(s), f.read_len, &f.np, &f.lt))
            .collect();
        for variant in KernelVariant::ALL {
            let (got, _) =
                likelihood_comp_gpu(&dev, variant, &words, &f.sw.spans, f.read_len, &tables);
            for (site, (g, e)) in got.iter().zip(&expected).enumerate() {
                for n in 0..NUM_GENOTYPES {
                    assert_eq!(
                        g[n].to_bits(),
                        e[n].to_bits(),
                        "{} site {site} genotype {n}",
                        variant.label()
                    );
                }
            }
        }
    }

    #[test]
    fn fused_kernel_matches_unfused_and_host_counting() {
        let d = Dataset::generate(SynthConfig::tiny(48));
        let p = PMatrix::calibrate(&d.reads, &d.reference, &ModelParams::default());
        let np = NewPMatrix::precompute(&p);
        let lt = LogTable::new();
        let mut wr = WindowReader::new(d.reads.iter().cloned().map(Ok), d.config.num_sites, 900);
        let w = wr.next_window().unwrap().unwrap();
        let mut sw = SparseWindow::count(&w); // summaries via from_obs
        sort_sparse_cpu(&mut sw);
        let dev = Device::m2050();
        let tables = DeviceTables::upload(&dev, &p, &np, &lt);
        let words = dev.upload(&sw.words);
        for variant in KernelVariant::ALL {
            let mut plain = Vec::new();
            likelihood_comp_gpu_into(
                &dev,
                variant,
                &words,
                &sw.spans,
                d.config.read_len,
                &tables,
                &mut plain,
            );
            let mut fused = Vec::new();
            let mut summaries = Vec::new();
            likelihood_comp_fused_gpu_into(
                &dev,
                variant,
                &words,
                &sw.spans,
                d.config.read_len,
                &tables,
                &mut fused,
                &mut summaries,
            );
            for (site, (f, e)) in fused.iter().zip(&plain).enumerate() {
                for n in 0..NUM_GENOTYPES {
                    assert_eq!(
                        f[n].to_bits(),
                        e[n].to_bits(),
                        "{} site {site} genotype {n}",
                        variant.label()
                    );
                }
            }
            assert_eq!(
                summaries,
                sw.summaries,
                "{}: fused summaries must equal from_obs",
                variant.label()
            );
        }
    }

    #[test]
    fn kernel_counters_reflect_the_optimizations() {
        let f = fixture(45);
        let dev = Device::m2050();
        let tables = DeviceTables::upload(&dev, &f.p, &f.np, &f.lt);
        let words = dev.upload(&f.sw.words);
        let run = |v: KernelVariant| {
            likelihood_comp_gpu(&dev, v, &words, &f.sw.spans, f.read_len, &tables).1
        };
        let base = run(KernelVariant::Baseline);
        let shared = run(KernelVariant::WithShared);
        let table = run(KernelVariant::WithNewTable);
        let opt = run(KernelVariant::Optimized);

        // Table III structure: shared removes global type_likely traffic…
        assert!(shared.counters.g_load() < base.counters.g_load());
        assert!(shared.counters.g_store() < base.counters.g_store());
        assert!(shared.counters.s_load > 0 && base.counters.s_load == 0);
        // …the new table halves the table reads and cuts instructions…
        assert!(table.counters.g_load() < base.counters.g_load());
        assert!(table.counters.instructions < base.counters.instructions);
        // …and the optimized kernel is cheapest on both axes.
        assert!(opt.counters.g_load() <= table.counters.g_load());
        assert!(opt.counters.instructions <= shared.counters.instructions);
        assert!(opt.sim_time < base.sim_time);
    }

    #[test]
    fn sorting_on_device_enables_bit_exact_comp() {
        // Unsorted words → device multipass sort → kernel == host reference.
        let d = Dataset::generate(SynthConfig::tiny(46));
        let p = PMatrix::calibrate(&d.reads, &d.reference, &ModelParams::default());
        let np = NewPMatrix::precompute(&p);
        let lt = LogTable::new();
        let mut wr = WindowReader::new(d.reads.iter().cloned().map(Ok), d.config.num_sites, 800);
        let w = wr.next_window().unwrap().unwrap();
        let sw = SparseWindow::count(&w); // NOT host-sorted
        let dev = Device::m2050();
        let words = dev.upload(&sw.words);
        likelihood_sort_gpu(&dev, &words, &sw.spans);
        let tables = DeviceTables::upload(&dev, &p, &np, &lt);
        let (got, _) = likelihood_comp_gpu(
            &dev,
            KernelVariant::Optimized,
            &words,
            &sw.spans,
            d.config.read_len,
            &tables,
        );
        let mut host_sorted = sw.clone();
        sort_sparse_cpu(&mut host_sorted);
        for (site, g) in got.iter().enumerate() {
            let e =
                likelihood_sparse_site(host_sorted.site_words(site), d.config.read_len, &np, &lt);
            for n in 0..NUM_GENOTYPES {
                assert_eq!(g[n].to_bits(), e[n].to_bits(), "site {site}");
            }
        }
    }

    #[test]
    fn zero_site_window_launches_nothing() {
        // Regression: a zero-site window must not tally a launch — the
        // dense grid used to be clamped to `.max(1)`, charging launch
        // overhead (and a ledger entry) for a kernel that touches nothing.
        let f = fixture(49);
        let dev = Device::m2050();
        let tables = DeviceTables::upload(&dev, &f.p, &f.np, &f.lt);
        let occ: GlobalBuffer<u8> = dev.alloc(0);
        let (out, stats) = likelihood_dense_gpu(&dev, &occ, 0, &tables);
        assert!(out.is_empty());
        assert_eq!(stats.grid_dim, 0);
        let words: GlobalBuffer<u32> = dev.alloc(0);
        let (comp, comp_stats) = likelihood_comp_gpu(
            &dev,
            KernelVariant::Optimized,
            &words,
            &[],
            f.read_len,
            &tables,
        );
        assert!(comp.is_empty());
        assert_eq!(comp_stats.grid_dim, 0);
        assert_eq!(dev.ledger().launches, 0);
        assert!(dev.kernel_launches().is_empty());
    }

    #[test]
    fn likelihood_contracts_verify_under_conformance() {
        use gpu_sim::SanitizerConfig;
        let f = fixture(50);
        let dev = Device::m2050()
            .with_sanitizer(SanitizerConfig::all().with_conformance())
            .with_contracts();
        let tables = DeviceTables::upload(&dev, &f.p, &f.np, &f.lt);
        let words = dev.upload(&f.sw.words);
        for variant in KernelVariant::ALL {
            likelihood_comp_gpu(&dev, variant, &words, &f.sw.spans, f.read_len, &tables);
        }
        let mut fused = Vec::new();
        let mut summaries = Vec::new();
        likelihood_comp_fused_gpu_into(
            &dev,
            KernelVariant::Optimized,
            &words,
            &f.sw.spans,
            f.read_len,
            &tables,
            &mut fused,
            &mut summaries,
        );
        let sites = 8usize;
        let mut small = DenseWindow::alloc(sites);
        for site in 0..sites {
            let m = small.site_mut(site);
            for &w in f.sw.site_words(site) {
                let (b, s, c, st, _) = baseword::unpack(w);
                let idx = base_occ_index(b, s, c, st);
                m[idx] = m[idx].saturating_add(1);
            }
        }
        let occ = upload_dense_transposed(&dev, &small, sites);
        likelihood_dense_gpu(&dev, &occ, sites, &tables);

        let report = dev.contract_report();
        let t = report.totals();
        assert!(t.verified >= 6, "expected every launch proved: {t:?}");
        assert_eq!(t.refuted, 0, "{:?}", report.diagnostics);
        assert_eq!(t.assumed, 0, "uncontracted launch: {:?}", report.per_kernel);
        let counts = dev.sanitizer_report().unwrap().counts;
        assert_eq!(counts.conformance_escapes, 0);
        assert_eq!(counts.overwide_declarations, 0);
        assert!(counts.is_clean());
    }

    #[test]
    fn dense_gpu_matches_host_and_moves_more_bytes() {
        let f = fixture(47);
        let sites = 16usize; // dense is expensive; a slice suffices
        let dev = Device::m2050();
        let tables = DeviceTables::upload(&dev, &f.p, &f.np, &f.lt);

        let mut small = DenseWindow::alloc(sites);
        // Rebuild a small dense window from the sparse one.
        for site in 0..sites {
            let words: Vec<u32> = f.sw.site_words(site).to_vec();
            let m = small.site_mut(site);
            for w in words {
                let (b, s, c, st, _) = baseword::unpack(w);
                let idx = base_occ_index(b, s, c, st);
                m[idx] = m[idx].saturating_add(1);
            }
        }
        let occ = upload_dense_transposed(&dev, &small, sites);
        let (got, dense_stats) = likelihood_dense_gpu(&dev, &occ, sites, &tables);
        for (site, g) in got.iter().enumerate() {
            let e = likelihood_dense_site(small.site(site), &f.p, &f.lt);
            for n in 0..NUM_GENOTYPES {
                assert_eq!(g[n].to_bits(), e[n].to_bits(), "site {site}");
            }
        }
        // Same sites through the sparse kernel: orders of magnitude less traffic.
        let spans: Vec<(usize, usize)> = f.sw.spans[..sites].to_vec();
        let words = dev.upload(&f.sw.words);
        let (_, sparse_stats) = likelihood_comp_gpu(
            &dev,
            KernelVariant::Optimized,
            &words,
            &spans,
            f.read_len,
            &tables,
        );
        assert!(
            dense_stats.counters.g_load() > 50 * sparse_stats.counters.g_load(),
            "dense {} vs sparse {}",
            dense_stats.counters.g_load(),
            sparse_stats.counters.g_load()
        );
        assert!(dense_stats.sim_time > sparse_stats.sim_time);
    }
}
