//! Call-set accuracy evaluation against a ground-truth variant list.
//!
//! The paper's context is a production pipeline whose *accuracy* is
//! established elsewhere (Li et al. 2009; the YanHuang project): GSNP's
//! claim is bit-identical output at higher speed. For the synthetic
//! workloads of this reproduction the truth set is known exactly, so we
//! can close the loop and verify that the reproduced caller is a
//! *working* SNP caller, not just a fast one: precision/recall by
//! quality threshold, genotype concordance, and transition/transversion
//! ratio sanity.

use seqio::base::{iupac, Base};
use seqio::result::SnpRow;
use seqio::synth::PlantedSnp;

/// Confusion counts at one quality threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Variant called at a planted site.
    pub true_positives: u64,
    /// Variant called where the donor matches the reference.
    pub false_positives: u64,
    /// Planted site with adequate coverage but no variant call.
    pub false_negatives: u64,
    /// True positives whose genotype also matches the planted alleles.
    pub genotype_exact: u64,
}

impl Confusion {
    /// Fraction of calls that are real.
    pub fn precision(&self) -> f64 {
        let calls = self.true_positives + self.false_positives;
        if calls == 0 {
            1.0
        } else {
            self.true_positives as f64 / calls as f64
        }
    }

    /// Fraction of (assessable) planted variants recovered.
    pub fn recall(&self) -> f64 {
        let truth = self.true_positives + self.false_negatives;
        if truth == 0 {
            1.0
        } else {
            self.true_positives as f64 / truth as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of true positives with the exactly right genotype.
    pub fn genotype_concordance(&self) -> f64 {
        if self.true_positives == 0 {
            1.0
        } else {
            self.genotype_exact as f64 / self.true_positives as f64
        }
    }
}

/// Evaluation options.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Minimum consensus quality for a call to count.
    pub min_quality: u8,
    /// Minimum depth for a planted site to be assessable (uncovered truth
    /// is excluded from recall, as in real benchmarking practice).
    pub min_truth_depth: u16,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            min_quality: 20,
            min_truth_depth: 4,
        }
    }
}

/// Evaluate `rows` (covering sites `0..rows.len()`) against the truth.
pub fn evaluate(rows: &[SnpRow], truth: &[PlantedSnp], cfg: &EvalConfig) -> Confusion {
    let mut c = Confusion::default();
    let mut truth_at = vec![None; rows.len()];
    for t in truth {
        if (t.pos as usize) < rows.len() {
            truth_at[t.pos as usize] = Some(t.alleles);
        }
    }
    for (row, planted) in rows.iter().zip(&truth_at) {
        let called = row.is_variant() && row.quality >= cfg.min_quality;
        match (called, planted) {
            (true, Some((a1, a2))) => {
                c.true_positives += 1;
                if row.genotype == iupac(*a1, *a2) {
                    c.genotype_exact += 1;
                }
            }
            (true, None) => c.false_positives += 1,
            (false, Some(_)) if row.depth >= cfg.min_truth_depth => c.false_negatives += 1,
            _ => {}
        }
    }
    c
}

/// Transition/transversion ratio of a call set (a standard sanity
/// statistic: human germline SNPs sit near 2.0).
pub fn titv_ratio(rows: &[SnpRow], min_quality: u8) -> f64 {
    let mut ti = 0u64;
    let mut tv = 0u64;
    for row in rows {
        if !row.is_variant() || row.quality < min_quality || row.ref_base >= 4 {
            continue;
        }
        let r = Base::from_code(row.ref_base);
        // Alternate allele(s) from the IUPAC genotype.
        for alt in Base::ALL {
            if alt == r {
                continue;
            }
            let hom = iupac(alt, alt);
            let het = iupac(r.min(alt), r.max(alt));
            if row.genotype == hom || row.genotype == het {
                if r.is_transition(alt) {
                    ti += 1;
                } else {
                    tv += 1;
                }
            }
        }
    }
    if tv == 0 {
        f64::INFINITY
    } else {
        ti as f64 / tv as f64
    }
}

/// Trio Mendelian-concordance counts: for each site the child calls a
/// variant, is the child's genotype composable from one allele of the
/// mother's called genotype and one of the father's? (With reference
/// alleles assumed available from a parent whose site is not called
/// variant.) This is the standard family-consistency check cohort
/// pipelines run — on the synthetic trio (child haplotypes inherited
/// whole from the parents, no de novo mutation) violations can come only
/// from calling errors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrioConcordance {
    /// Child variant calls assessed (quality-passing, in range).
    pub assessed: u64,
    /// Assessed calls consistent with Mendelian inheritance.
    pub consistent: u64,
}

impl TrioConcordance {
    /// Fraction of assessed child calls that are Mendelian-consistent.
    pub fn rate(&self) -> f64 {
        if self.assessed == 0 {
            1.0
        } else {
            self.consistent as f64 / self.assessed as f64
        }
    }
}

/// Possible alleles at one site given a parent's called row: the called
/// genotype's alleles when the parent confidently calls a variant, the
/// reference base when it confidently calls reference, and *no* alleles
/// (site unassessable) when the parent's call is below `min_quality` —
/// a missed parental heterozygote must not masquerade as hom-ref and
/// charge the child with a false Mendelian violation.
fn parent_alleles(row: &SnpRow, min_quality: u8) -> Vec<Base> {
    if row.ref_base >= 4 || row.quality < min_quality {
        return Vec::new();
    }
    let r = Base::from_code(row.ref_base);
    if !row.is_variant() {
        return vec![r];
    }
    let mut alleles = Vec::new();
    for a in Base::ALL {
        for b in Base::ALL {
            if a <= b && row.genotype == iupac(a, b) {
                alleles.push(a);
                alleles.push(b);
            }
        }
    }
    alleles
}

/// Check each child variant call (at `min_quality`) for Mendelian
/// consistency against the parents' calls at the same site. The three row
/// slices must cover the same site range (`rows[i]` = site `i`), which
/// cohort outputs guarantee by construction.
pub fn trio_concordance(
    mother: &[SnpRow],
    father: &[SnpRow],
    child: &[SnpRow],
    min_quality: u8,
) -> TrioConcordance {
    assert_eq!(mother.len(), child.len(), "trio row ranges must align");
    assert_eq!(father.len(), child.len(), "trio row ranges must align");
    let mut t = TrioConcordance::default();
    for (site, row) in child.iter().enumerate() {
        if !row.is_variant() || row.quality < min_quality || row.ref_base >= 4 {
            continue;
        }
        let from_mother = parent_alleles(&mother[site], min_quality);
        let from_father = parent_alleles(&father[site], min_quality);
        if from_mother.is_empty() || from_father.is_empty() {
            continue;
        }
        t.assessed += 1;
        let consistent = from_mother.iter().any(|&m| {
            from_father
                .iter()
                .any(|&f| row.genotype == iupac(m.min(f), m.max(f)))
        });
        if consistent {
            t.consistent += 1;
        }
    }
    t
}

/// Precision/recall sweep over quality thresholds (an ROC-style curve).
pub fn quality_sweep(
    rows: &[SnpRow],
    truth: &[PlantedSnp],
    thresholds: &[u8],
) -> Vec<(u8, Confusion)> {
    thresholds
        .iter()
        .map(|&q| {
            let cfg = EvalConfig {
                min_quality: q,
                ..Default::default()
            };
            (q, evaluate(rows, truth, &cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{GsnpConfig, GsnpCpuPipeline};
    use seqio::synth::{Dataset, SynthConfig};

    fn called_dataset() -> (Dataset, Vec<SnpRow>) {
        let mut cfg = SynthConfig::tiny(0xACC);
        cfg.num_sites = 15_000;
        cfg.snp_rate = 4e-3;
        let d = Dataset::generate(cfg);
        let out = GsnpCpuPipeline::new(GsnpConfig {
            window_size: 5_000,
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        let rows = out.all_rows();
        (d, rows)
    }

    #[test]
    fn confusion_arithmetic() {
        let c = Confusion {
            true_positives: 8,
            false_positives: 2,
            false_negatives: 2,
            genotype_exact: 6,
        };
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!((c.f1() - 0.8).abs() < 1e-12);
        assert!((c.genotype_concordance() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_call_set_degenerates_gracefully() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn caller_is_accurate_on_synthetic_truth() {
        let (d, rows) = called_dataset();
        // At the test dataset's 8x depth a Q20 threshold is conservative
        // for heterozygotes; assess recall at Q13 over well-covered truth.
        let c = evaluate(
            &rows,
            &d.truth,
            &EvalConfig {
                min_quality: 13,
                min_truth_depth: 8,
            },
        );
        assert!(c.true_positives >= 20, "{c:?}");
        assert!(
            c.precision() > 0.9,
            "precision {:.3} ({c:?})",
            c.precision()
        );
        assert!(c.recall() > 0.75, "recall {:.3} ({c:?})", c.recall());
        assert!(
            c.genotype_concordance() > 0.85,
            "concordance {:.3}",
            c.genotype_concordance()
        );
    }

    #[test]
    fn higher_thresholds_trade_recall_for_precision() {
        let (d, rows) = called_dataset();
        let sweep = quality_sweep(&rows, &d.truth, &[0, 20, 40]);
        // Recall must be non-increasing in the threshold.
        for w in sweep.windows(2) {
            assert!(w[0].1.recall() >= w[1].1.recall());
        }
        // Everything called at a high threshold is also called at zero.
        assert!(sweep[0].1.true_positives >= sweep[2].1.true_positives);
    }

    #[test]
    fn trio_calls_are_mendelian_consistent() {
        use seqio::synth::{Cohort, CohortConfig};
        let mut base = SynthConfig::tiny(0x7210);
        base.num_sites = 15_000;
        base.snp_rate = 8e-3;
        let trio = Cohort::generate_trio(CohortConfig {
            base,
            num_samples: 3,
            shared_rate: 0.6,
        });
        let call = |reads: &[seqio::AlignedRead]| {
            GsnpCpuPipeline::new(GsnpConfig {
                window_size: 5_000,
                ..Default::default()
            })
            .run(reads, &trio.reference, &trio.priors)
            .all_rows()
        };
        let mother = call(&trio.sample("mother").unwrap().reads);
        let father = call(&trio.sample("father").unwrap().reads);
        let child = call(&trio.sample("child").unwrap().reads);
        let t = trio_concordance(&mother, &father, &child, 13);
        // The synthetic child inherits whole parental haplotypes with no
        // de novo mutation, so inconsistencies are pure calling error.
        assert!(t.assessed >= 10, "{t:?}");
        assert!(t.rate() > 0.9, "concordance {:.3} ({t:?})", t.rate());
        // Sanity: the statistic is not trivially 1.0 by construction —
        // shuffled "parents" (child vs itself as both parents) differs.
        let degenerate = trio_concordance(&child, &child, &mother, 13);
        assert!(degenerate.assessed > 0);
    }

    #[test]
    fn titv_is_biased_toward_transitions() {
        let (_, rows) = called_dataset();
        let r = titv_ratio(&rows, 20);
        // The generator plants with a 2:1 bias; the call set should keep
        // a clear transition excess.
        assert!(r > 1.0, "ti/tv {r}");
    }
}
