//! Structured JSONL run journal.
//!
//! `gsnp call --journal out.jsonl` appends one JSON object per line as
//! the run executes: a `run_start` manifest (config, inputs with FNV-64
//! checksums, crate version), per-batch and per-stage lifecycle events,
//! per-device accounting (including sanitizer and contract findings),
//! cohort gate tallies, and a `run_end` summary carrying the latency
//! histogram digests. The file is self-describing — `gsnp report
//! run.jsonl` reconstructs a human-readable post-run report from the
//! journal alone and validates its invariants ([`validate`]).
//!
//! Events are written under one lock with the timestamp taken *inside*
//! the critical section, so lines are strictly ordered and `t` is
//! monotonic no matter how many worker threads emit concurrently.
//! Emission is outside the per-site hot loops (per batch at the finest),
//! so journaling never perturbs byte-identical output.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use gpu_sim::{parse_json, HistogramDigest, Json};
use parking_lot::Mutex;

/// Journal schema version stamped into every `run_start` event.
pub const SCHEMA_VERSION: u64 = 1;

/// An append-only JSONL run journal. Cloneable handles are shared via
/// `Arc` in [`crate::GsnpConfig::journal`].
#[derive(Debug)]
pub struct Journal {
    start: Instant,
    writer: Mutex<BufWriter<File>>,
    write_failed: AtomicBool,
}

impl Journal {
    /// Create (truncate) the journal file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Journal> {
        let file = File::create(path)?;
        Ok(Journal {
            start: Instant::now(),
            writer: Mutex::new(BufWriter::new(file)),
            write_failed: AtomicBool::new(false),
        })
    }

    /// Append one event line: `{"t":<secs>,"event":"<kind>"[,body]}`.
    /// `body` is a pre-rendered fragment of `"key":value` pairs (no
    /// leading comma), or empty. Write errors are latched (see
    /// [`Journal::take_error`]) rather than propagated, so worker
    /// threads never unwind over a full disk.
    pub fn event(&self, kind: &str, body: &str) {
        let mut w = self.writer.lock();
        // Timestamp under the lock: file order == time order.
        let t = self.start.elapsed().as_secs_f64();
        let r = if body.is_empty() {
            writeln!(w, "{{\"t\":{t:.6},\"event\":\"{}\"}}", json_escape(kind))
        } else {
            writeln!(
                w,
                "{{\"t\":{t:.6},\"event\":\"{}\",{body}}}",
                json_escape(kind)
            )
        };
        if r.is_err() {
            self.write_failed.store(true, Ordering::Relaxed);
        }
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) {
        if self.writer.lock().flush().is_err() {
            self.write_failed.store(true, Ordering::Relaxed);
        }
    }

    /// True if any write or flush failed since creation (checked once by
    /// the CLI at run end).
    pub fn take_error(&self) -> bool {
        self.flush();
        self.write_failed.load(Ordering::Relaxed)
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// FNV-1a 64-bit checksum — the input-manifest fingerprint written into
/// `run_start` (dependency-free, stable across platforms).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Render one histogram digest as the JSON fragment used inside the
/// `run_end` event's `hists` array.
pub fn digest_json(name: &str, d: &HistogramDigest) -> String {
    format!(
        "{{\"name\":\"{}\",\"p50\":{:.9},\"p95\":{:.9},\"p99\":{:.9},\
         \"max\":{:.9},\"count\":{},\"sum\":{:.9}}}",
        json_escape(name),
        d.p50,
        d.p95,
        d.p99,
        d.max,
        d.count,
        d.sum
    )
}

/// A parsed, invariant-checked journal.
#[derive(Debug)]
pub struct JournalSummary {
    /// Every event in file order.
    pub events: Vec<Json>,
    /// The `run_start` manifest (always the first event).
    pub run_start: Json,
    /// The `run_end` summary (always the last event).
    pub run_end: Json,
}

fn field_str<'a>(ev: &'a Json, key: &str) -> Option<&'a str> {
    ev.get(key).and_then(Json::as_str)
}

fn field_num(ev: &Json, key: &str) -> Option<f64> {
    ev.get(key).and_then(Json::as_num)
}

/// Parse a journal's full text and check its invariants:
///
/// 1. at least two lines, each a JSON object with numeric `t` and
///    string `event`;
/// 2. the first event is `run_start` with the supported `schema`;
/// 3. the last event is `run_end`, and each appears exactly once;
/// 4. timestamps are monotonically non-decreasing;
/// 5. when both are present, the `run_end` window total equals the sum
///    of `batch` event window counts.
pub fn validate(text: &str) -> Result<JournalSummary, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            return Err(format!("line {n}: empty line in journal"));
        }
        let ev = parse_json(line).map_err(|e| format!("line {n}: invalid JSON: {e}"))?;
        if field_num(&ev, "t").is_none() {
            return Err(format!("line {n}: missing numeric \"t\""));
        }
        if field_str(&ev, "event").is_none() {
            return Err(format!("line {n}: missing string \"event\""));
        }
        events.push(ev);
    }
    if events.len() < 2 {
        return Err(format!(
            "journal has {} event(s); need at least run_start and run_end",
            events.len()
        ));
    }
    let starts = events
        .iter()
        .filter(|e| field_str(e, "event") == Some("run_start"))
        .count();
    let ends = events
        .iter()
        .filter(|e| field_str(e, "event") == Some("run_end"))
        .count();
    if field_str(&events[0], "event") != Some("run_start") || starts != 1 {
        return Err("journal must begin with exactly one run_start event".to_string());
    }
    if field_str(events.last().unwrap(), "event") != Some("run_end") || ends != 1 {
        return Err("journal must end with exactly one run_end event".to_string());
    }
    let schema = field_num(&events[0], "schema").unwrap_or(0.0) as u64;
    if schema != SCHEMA_VERSION {
        return Err(format!(
            "unsupported journal schema {schema} (expected {SCHEMA_VERSION})"
        ));
    }
    let mut prev_t = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let t = field_num(ev, "t").unwrap();
        if t < prev_t {
            return Err(format!(
                "line {}: timestamp {t:.6} goes backwards (previous {prev_t:.6})",
                i + 1
            ));
        }
        prev_t = t;
    }
    let batch_windows: f64 = events
        .iter()
        .filter(|e| field_str(e, "event") == Some("batch"))
        .filter_map(|e| field_num(e, "windows"))
        .sum();
    let run_end = events.last().unwrap().clone();
    if batch_windows > 0.0 {
        if let Some(end_windows) = field_num(&run_end, "windows") {
            if (end_windows - batch_windows).abs() > 0.5 {
                return Err(format!(
                    "run_end reports {end_windows} windows but batch events sum to {batch_windows}"
                ));
            }
        }
    }
    Ok(JournalSummary {
        run_start: events[0].clone(),
        run_end,
        events,
    })
}

fn fmt_secs(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.3}s")
    } else if v >= 1e-3 {
        format!("{:.3}ms", v * 1e3)
    } else {
        format!("{:.3}us", v * 1e6)
    }
}

/// Validate `text` and render the human-readable post-run report that
/// `gsnp report` prints. Errors describe the violated invariant.
pub fn render_report(text: &str) -> Result<String, String> {
    let s = validate(text)?;
    let mut out = String::new();
    let start = &s.run_start;
    let end = &s.run_end;
    out.push_str(&format!(
        "run journal: {} events, schema {}\n",
        s.events.len(),
        field_num(start, "schema").unwrap_or(0.0) as u64
    ));
    if let Some(v) = field_str(start, "version") {
        out.push_str(&format!("  gsnp version: {v}\n"));
    }
    if let Some(cmd) = field_str(start, "cmd") {
        out.push_str(&format!("  command: {cmd}\n"));
    }
    if let Some(Json::Obj(kv)) = start.get("config") {
        let fields: Vec<String> = kv
            .iter()
            .map(|(k, v)| match v {
                Json::Str(sv) => format!("{k}={sv}"),
                Json::Num(n) => format!("{k}={n}"),
                Json::Bool(b) => format!("{k}={b}"),
                _ => format!("{k}=?"),
            })
            .collect();
        out.push_str(&format!("  config: {}\n", fields.join(" ")));
    }
    if let Some(inputs) = start.get("inputs").and_then(Json::as_arr) {
        for inp in inputs {
            out.push_str(&format!(
                "  input: {} ({} bytes, fnv64 {})\n",
                field_str(inp, "path").unwrap_or("?"),
                field_num(inp, "bytes").unwrap_or(0.0) as u64,
                field_str(inp, "fnv64").unwrap_or("?"),
            ));
        }
    }
    let batches = s
        .events
        .iter()
        .filter(|e| field_str(e, "event") == Some("batch"))
        .count();
    let lanes: Vec<&Json> = s
        .events
        .iter()
        .filter(|e| field_str(e, "event") == Some("lane"))
        .collect();
    let stages: Vec<&Json> = s
        .events
        .iter()
        .filter(|e| field_str(e, "event") == Some("stage"))
        .collect();
    let devices: Vec<&Json> = s
        .events
        .iter()
        .filter(|e| field_str(e, "event") == Some("device"))
        .collect();
    let samples: Vec<&Json> = s
        .events
        .iter()
        .filter(|e| field_str(e, "event") == Some("sample"))
        .collect();
    out.push_str(&format!(
        "\ntotals: {} windows, {} sites, {} SNP calls in {}\n",
        field_num(end, "windows").unwrap_or(0.0) as u64,
        field_num(end, "sites").unwrap_or(0.0) as u64,
        field_num(end, "snp_calls").unwrap_or(0.0) as u64,
        fmt_secs(field_num(end, "wall_seconds").unwrap_or(0.0)),
    ));
    if let Some(sps) = field_num(end, "sites_per_second") {
        out.push_str(&format!("  throughput: {:.2} Msites/s\n", sps / 1e6));
    }
    out.push_str(&format!("  device batches: {batches}\n"));
    for lane in &lanes {
        out.push_str(&format!(
            "  lane d{}: {} windows, {} steals, busy {}\n",
            field_num(lane, "device").unwrap_or(0.0) as u64,
            field_num(lane, "windows").unwrap_or(0.0) as u64,
            field_num(lane, "steals").unwrap_or(0.0) as u64,
            fmt_secs(field_num(lane, "busy_seconds").unwrap_or(0.0)),
        ));
    }
    if !stages.is_empty() {
        out.push_str("\nstage             busy        stall_in    stall_out\n");
        for st in &stages {
            out.push_str(&format!(
                "  {:<14}  {:>10}  {:>10}  {:>10}\n",
                field_str(st, "stage").unwrap_or("?"),
                fmt_secs(field_num(st, "busy_seconds").unwrap_or(0.0)),
                fmt_secs(field_num(st, "stall_in_seconds").unwrap_or(0.0)),
                fmt_secs(field_num(st, "stall_out_seconds").unwrap_or(0.0)),
            ));
        }
    }
    for dev in &devices {
        out.push_str(&format!(
            "device d{}: {} launches, {} sanitizer findings, {} contract violations\n",
            field_num(dev, "device").unwrap_or(0.0) as u64,
            field_num(dev, "launches").unwrap_or(0.0) as u64,
            field_num(dev, "sanitizer_findings").unwrap_or(0.0) as u64,
            field_num(dev, "contract_violations").unwrap_or(0.0) as u64,
        ));
    }
    if !samples.is_empty() {
        out.push_str(&format!("\ncohort: {} samples\n", samples.len()));
        for sm in &samples {
            out.push_str(&format!(
                "  {}: {} SNPs, {} gated NoCalls, {} forced NoCalls\n",
                field_str(sm, "name").unwrap_or("?"),
                field_num(sm, "snp_calls").unwrap_or(0.0) as u64,
                field_num(sm, "gated_nocalls").unwrap_or(0.0) as u64,
                field_num(sm, "forced_nocalls").unwrap_or(0.0) as u64,
            ));
        }
    }
    if let Some(gates) = s
        .events
        .iter()
        .find(|e| field_str(e, "event") == Some("gates"))
    {
        out.push_str(&format!(
            "  noisy sites flagged across cohort: {}\n",
            field_num(gates, "noisy_sites").unwrap_or(0.0) as u64
        ));
    }
    if let Some(hists) = end.get("hists").and_then(Json::as_arr) {
        if !hists.is_empty() {
            out.push_str(
                "\nlatency             p50         p95         p99         max       count\n",
            );
            for h in hists {
                out.push_str(&format!(
                    "  {:<16}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                    field_str(h, "name").unwrap_or("?"),
                    fmt_secs(field_num(h, "p50").unwrap_or(0.0)),
                    fmt_secs(field_num(h, "p95").unwrap_or(0.0)),
                    fmt_secs(field_num(h, "p99").unwrap_or(0.0)),
                    fmt_secs(field_num(h, "max").unwrap_or(0.0)),
                    field_num(h, "count").unwrap_or(0.0) as u64,
                ));
            }
        }
    }
    out.push_str("\njournal invariants: ok\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gsnp-journal-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn journal_roundtrips_through_validate() {
        let path = tmpfile("roundtrip");
        let j = Journal::create(&path).unwrap();
        j.event(
            "run_start",
            "\"schema\":1,\"version\":\"0.1.0\",\"cmd\":\"call\"",
        );
        j.event(
            "batch",
            "\"lane\":0,\"idx\":0,\"windows\":3,\"busy_seconds\":0.01",
        );
        j.event(
            "batch",
            "\"lane\":1,\"idx\":1,\"windows\":2,\"busy_seconds\":0.01",
        );
        j.event(
            "run_end",
            &format!(
                "\"windows\":5,\"sites\":5000,\"snp_calls\":7,\"wall_seconds\":0.05,\
                 \"hists\":[{}]",
                digest_json(
                    "window",
                    &HistogramDigest {
                        p50: 1e-3,
                        p95: 2e-3,
                        p99: 2e-3,
                        max: 2.2e-3,
                        count: 5,
                        sum: 6e-3
                    }
                )
            ),
        );
        assert!(!j.take_error());
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let s = validate(&text).expect("journal validates");
        assert_eq!(s.events.len(), 4);
        let report = render_report(&text).unwrap();
        assert!(report.contains("5 windows"), "{report}");
        assert!(report.contains("window"), "{report}");
        assert!(report.contains("invariants: ok"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_rejects_malformed_journals() {
        assert!(validate("").unwrap_err().contains("need at least"));
        let no_start = "{\"t\":0.0,\"event\":\"batch\"}\n{\"t\":0.1,\"event\":\"run_end\"}";
        assert!(validate(no_start).unwrap_err().contains("run_start"));
        let bad_schema = "{\"t\":0.0,\"event\":\"run_start\",\"schema\":99}\n\
                          {\"t\":0.1,\"event\":\"run_end\"}";
        assert!(validate(bad_schema).unwrap_err().contains("schema"));
        let backwards = "{\"t\":0.5,\"event\":\"run_start\",\"schema\":1}\n\
                         {\"t\":0.1,\"event\":\"run_end\"}";
        assert!(validate(backwards).unwrap_err().contains("backwards"));
        let mismatch = "{\"t\":0.0,\"event\":\"run_start\",\"schema\":1}\n\
                        {\"t\":0.1,\"event\":\"batch\",\"windows\":4}\n\
                        {\"t\":0.2,\"event\":\"run_end\",\"windows\":9}";
        assert!(validate(mismatch).unwrap_err().contains("batch events sum"));
        let not_json = "{\"t\":0.0,\"event\":\"run_start\",\"schema\":1}\nnot json\n\
                        {\"t\":0.2,\"event\":\"run_end\"}";
        assert!(validate(not_json).unwrap_err().contains("line 2"));
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }

    #[test]
    fn escape_covers_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
