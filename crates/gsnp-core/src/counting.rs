//! The `counting` component: per-site aligned-base collection.
//!
//! Two representations of the same information (§IV-B, Fig. 3):
//!
//! * **Sparse** ([`SparseWindow`]): one packed [`crate::baseword`] word per
//!   occurrence, grouped by site — GSNP's representation. At ≤100× depth
//!   the dense matrix is ~0.08% non-zero, so this shrinks memory traffic
//!   by three orders of magnitude and makes `recycle` trivial.
//! * **Dense** ([`DenseWindow`]): SOAPsnp's `base_occ` matrix, one byte of
//!   occurrence count per `(base, score, coord, strand)` cell —
//!   `4 × 64 × 256 × 2 = 131,072` cells *per site*.

use seqio::window::Window;

use crate::baseword;
use crate::model::SiteSummary;

/// Cells in one site's dense `base_occ` matrix.
pub const SITE_CELLS: usize = 4 * 64 * 256 * 2;

/// Dense cell index — the paper's Algorithm 1 line 7 packing:
/// `base << 15 | score << 9 | coord << 1 | strand`.
///
/// Note the *uninverted* score: the dense scan controls iteration order
/// with its loop structure, so no score inversion is needed there.
#[inline(always)]
pub fn base_occ_index(base: u8, score: u8, coord: u8, strand: u8) -> usize {
    (usize::from(base) << 15)
        | (usize::from(score) << 9)
        | (usize::from(coord) << 1)
        | usize::from(strand)
}

/// Sparse representation of one window plus the per-site summaries that
/// feed the non-likelihood result columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseWindow {
    /// All sites' `base_word` arrays, concatenated (unsorted, in input
    /// observation order — the multipass sort restores canonical order).
    pub words: Vec<u32>,
    /// `(offset, len)` of each site's array within `words`.
    pub spans: Vec<(usize, usize)>,
    /// Per-site observation summaries.
    pub summaries: Vec<SiteSummary>,
}

impl SparseWindow {
    /// Build from a loaded window.
    pub fn count(window: &Window) -> SparseWindow {
        let mut sw = SparseWindow::default();
        sw.count_into(window);
        sw
    }

    /// Rebuild from a loaded window, reusing this instance's vector
    /// capacity — the sparse `recycle` path (§IV-B calls it "trivial":
    /// clearing the word list is all the reinitialization needed).
    pub fn count_into(&mut self, window: &Window) {
        self.words.clear();
        self.spans.clear();
        self.summaries.clear();
        let total: usize = window.obs.iter().map(Vec::len).sum();
        self.words.reserve(total);
        self.spans.reserve(window.len());
        self.summaries.reserve(window.len());
        for site_obs in &window.obs {
            let start = self.words.len();
            for o in site_obs {
                self.words
                    .push(baseword::pack(o.base, o.qual, o.coord, o.strand, o.uniq));
            }
            self.spans.push((start, site_obs.len()));
            self.summaries.push(SiteSummary::from_obs(site_obs));
        }
    }

    /// Like [`SparseWindow::count_into`] but *without* the per-site
    /// summary traversal: fills only `words` and `spans`, clearing
    /// `summaries`. The fused counting+likelihood device kernel derives
    /// the summaries from the packed words during its sorted scan
    /// ([`crate::likelihood::likelihood_comp_fused_gpu_into`]), so
    /// building them host-side here would traverse every observation a
    /// second time for nothing.
    pub fn count_words_into(&mut self, window: &Window) {
        self.words.clear();
        self.spans.clear();
        self.summaries.clear();
        let total: usize = window.obs.iter().map(Vec::len).sum();
        self.words.reserve(total);
        self.spans.reserve(window.len());
        for site_obs in &window.obs {
            let start = self.words.len();
            for o in site_obs {
                self.words
                    .push(baseword::pack(o.base, o.qual, o.coord, o.strand, o.uniq));
            }
            self.spans.push((start, site_obs.len()));
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.spans.len()
    }

    /// Bytes held by the sparse representation.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4 + self.spans.len() * 16
    }

    /// One site's (possibly unsorted) word array.
    pub fn site_words(&self, site: usize) -> &[u32] {
        let (off, len) = self.spans[site];
        &self.words[off..off + len]
    }
}

/// Dense `base_occ` for a whole window: `num_sites × 131,072` bytes,
/// allocated once and re-zeroed by the `recycle` component each pass —
/// exactly SOAPsnp's memory behaviour, including the cost the paper's
/// Formula (1) estimates.
#[derive(Debug)]
pub struct DenseWindow {
    occ: Vec<u8>,
    num_sites: usize,
}

impl DenseWindow {
    /// Allocate a zeroed dense window for `num_sites` sites.
    pub fn alloc(num_sites: usize) -> DenseWindow {
        DenseWindow {
            occ: vec![0u8; num_sites * SITE_CELLS],
            num_sites,
        }
    }

    /// Number of sites this window can hold.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Bytes held by the dense representation.
    pub fn size_bytes(&self) -> usize {
        self.occ.len()
    }

    /// Fill occurrence counts from a loaded window (sites beyond
    /// `window.len()` keep their current contents).
    ///
    /// # Panics
    /// Panics if the window has more sites than this allocation.
    pub fn count(&mut self, window: &Window) -> Vec<SiteSummary> {
        assert!(
            window.len() <= self.num_sites,
            "window exceeds dense allocation"
        );
        let mut summaries = Vec::with_capacity(window.len());
        for (site, site_obs) in window.obs.iter().enumerate() {
            let cell0 = site * SITE_CELLS;
            for o in site_obs {
                let idx = cell0 + base_occ_index(o.base, o.qual, o.coord, o.strand);
                self.occ[idx] = self.occ[idx].saturating_add(1);
            }
            summaries.push(SiteSummary::from_obs(site_obs));
        }
        summaries
    }

    /// One site's 131,072-cell matrix.
    pub fn site(&self, site: usize) -> &[u8] {
        &self.occ[site * SITE_CELLS..(site + 1) * SITE_CELLS]
    }

    /// Mutable access to one site's matrix.
    pub fn site_mut(&mut self, site: usize) -> &mut [u8] {
        &mut self.occ[site * SITE_CELLS..(site + 1) * SITE_CELLS]
    }

    /// The `recycle` component: reinitialize every cell. Deliberately a
    /// full-buffer write — this is the cost the sparse representation
    /// eliminates (Table I vs Table IV, `recycle` column).
    pub fn recycle(&mut self) {
        self.occ.fill(0);
    }

    /// Recycle only the first `n` sites' matrices (the final window of a
    /// chromosome is usually partial; Formula (1) counts exactly the used
    /// sites).
    pub fn recycle_sites(&mut self, n: usize) {
        self.occ[..n * SITE_CELLS].fill(0);
    }
}

/// Per-site count of non-zero `base_occ` cells (distinct observation
/// tuples), the quantity Fig. 4(b) histograms.
pub fn nonzero_cells_per_site(window: &Window) -> Vec<usize> {
    window
        .obs
        .iter()
        .map(|site_obs| {
            // Dense cells have no uniqueness dimension, so dedup ignoring
            // the word's uniq bit.
            let mut words: Vec<u32> = site_obs
                .iter()
                .map(|o| baseword::pack(o.base, o.qual, o.coord, o.strand, false))
                .collect();
            words.sort_unstable();
            words.dedup();
            words.len()
        })
        .collect()
}

/// Histogram of [`nonzero_cells_per_site`] into the buckets Fig. 4(b)
/// plots: `[0, 1–10, 11–20, 21–40, 41–80, 81+]`. Returns the fraction of
/// sites in each bucket.
pub fn sparsity_histogram(nonzeros: &[usize]) -> [f64; 6] {
    let mut buckets = [0usize; 6];
    for &n in nonzeros {
        let b = match n {
            0 => 0,
            1..=10 => 1,
            11..=20 => 2,
            21..=40 => 3,
            41..=80 => 4,
            _ => 5,
        };
        buckets[b] += 1;
    }
    let total = nonzeros.len().max(1) as f64;
    buckets.map(|c| c as f64 / total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio::window::SiteObs;

    fn obs(base: u8, qual: u8, coord: u8, strand: u8) -> SiteObs {
        SiteObs {
            base,
            qual,
            coord,
            strand,
            uniq: true,
        }
    }

    fn window() -> Window {
        Window {
            start: 100,
            obs: vec![
                vec![obs(0, 40, 3, 0), obs(0, 40, 3, 0), obs(2, 35, 7, 1)],
                vec![],
                vec![obs(3, 20, 0, 0)],
            ],
        }
    }

    #[test]
    fn sparse_counts_one_word_per_occurrence() {
        let w = window();
        let s = SparseWindow::count(&w);
        assert_eq!(s.num_sites(), 3);
        assert_eq!(s.spans, vec![(0, 3), (3, 0), (3, 1)]);
        // Duplicate observations are stored twice (no occurrence counter —
        // §IV-B: "each base_word element represents one occurrence").
        assert_eq!(s.site_words(0)[0], s.site_words(0)[1]);
        assert_eq!(s.summaries[0].depth, 3);
        assert_eq!(s.summaries[1].depth, 0);
    }

    #[test]
    fn count_words_into_matches_count_minus_summaries() {
        let w = window();
        let full = SparseWindow::count(&w);
        let mut words_only = SparseWindow::default();
        words_only.count_words_into(&w);
        assert_eq!(words_only.words, full.words);
        assert_eq!(words_only.spans, full.spans);
        assert!(words_only.summaries.is_empty());
    }

    #[test]
    fn count_into_reuse_matches_fresh() {
        let w = window();
        let fresh = SparseWindow::count(&w);
        let mut reused = SparseWindow::count(&Window {
            start: 0,
            obs: vec![vec![obs(1, 10, 1, 1); 5]; 8],
        });
        reused.count_into(&w);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn dense_counts_occurrences_in_cells() {
        let w = window();
        let mut d = DenseWindow::alloc(3);
        let summaries = d.count(&w);
        assert_eq!(summaries.len(), 3);
        assert_eq!(d.site(0)[base_occ_index(0, 40, 3, 0)], 2);
        assert_eq!(d.site(0)[base_occ_index(2, 35, 7, 1)], 1);
        assert_eq!(d.site(2)[base_occ_index(3, 20, 0, 0)], 1);
        assert_eq!(d.site(1).iter().map(|&x| x as u64).sum::<u64>(), 0);
    }

    #[test]
    fn dense_recycle_zeroes_everything() {
        let w = window();
        let mut d = DenseWindow::alloc(3);
        d.count(&w);
        d.recycle();
        assert!(d.site(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn dense_size_matches_paper() {
        let d = DenseWindow::alloc(10);
        assert_eq!(SITE_CELLS, 131_072);
        assert_eq!(d.size_bytes(), 10 * 131_072);
    }

    #[test]
    fn sparse_is_tiny_compared_to_dense() {
        let w = window();
        let s = SparseWindow::count(&w);
        let d = DenseWindow::alloc(3);
        assert!(s.size_bytes() * 1000 < d.size_bytes());
    }

    #[test]
    fn nonzero_cells_dedup_duplicates() {
        let w = window();
        assert_eq!(nonzero_cells_per_site(&w), vec![2, 0, 1]);
    }

    #[test]
    fn histogram_buckets() {
        let h = sparsity_histogram(&[0, 0, 5, 15, 30, 60, 100]);
        assert!((h[0] - 2.0 / 7.0).abs() < 1e-12);
        assert!((h[1] - 1.0 / 7.0).abs() < 1e-12);
        assert!((h[5] - 1.0 / 7.0).abs() < 1e-12);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window exceeds dense allocation")]
    fn dense_overflow_panics() {
        let w = window();
        let mut d = DenseWindow::alloc(2);
        d.count(&w);
    }
}
