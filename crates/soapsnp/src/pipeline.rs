//! The SOAPsnp windowed pipeline (Fig. 1 of the paper).
//!
//! ```text
//! cal_p_matrix ──► [ read_site → counting → likelihood → posterior
//!                    → output → recycle ]*            (per window)
//! ```
//!
//! Per-component wall-clock timers reproduce Table I's breakdown. The
//! dense window buffer is allocated once (window_size × 131,072 bytes —
//! with the paper's default window of 4,000 sites this is the ~0.5 GB
//! that makes `recycle` the second most expensive component) and re-zeroed
//! every pass.

use std::time::Instant;

use gsnp_core::counting::{DenseWindow, SITE_CELLS};
use gsnp_core::likelihood::likelihood_dense_site;
use gsnp_core::model::{posterior, ModelParams};
use gsnp_core::pipeline::{ComponentTimes, PipelineStats};
use gsnp_core::tables::{LogTable, PMatrix};
use seqio::fasta::Reference;
use seqio::prior::PriorMap;
use seqio::result::{SnpRow, SnpTable};
use seqio::soap::AlignedRead;
use seqio::window::WindowReader;

/// SOAPsnp configuration.
#[derive(Debug, Clone)]
pub struct SoapSnpConfig {
    /// Sites per window. SOAPsnp's default in the paper is 4,000 (which
    /// costs `4,000 × 131,072 B ≈ 0.5 GB` of dense matrices).
    pub window_size: usize,
    /// Bayesian model parameters (must match GSNP's for §IV-G parity).
    pub params: ModelParams,
    /// Maximum read length (bounds the canonical coordinate scan).
    pub read_len: usize,
}

impl Default for SoapSnpConfig {
    fn default() -> Self {
        SoapSnpConfig {
            window_size: 4_000,
            params: ModelParams::default(),
            read_len: 100,
        }
    }
}

/// Everything a SOAPsnp run produces.
#[derive(Debug)]
pub struct SoapSnpOutput {
    /// Per-window result tables.
    pub tables: Vec<SnpTable>,
    /// The plain-text 17-column output file.
    pub text: Vec<u8>,
    /// Per-component wall-clock times (Table I).
    pub times: ComponentTimes,
    /// Aggregate statistics.
    pub stats: PipelineStats,
}

impl SoapSnpOutput {
    /// Flatten all windows into rows (for comparisons).
    pub fn all_rows(&self) -> Vec<SnpRow> {
        self.tables
            .iter()
            .flat_map(|t| t.rows.iter().copied())
            .collect()
    }
}

/// The paper's Formula (1): estimated time to stream every site's dense
/// `base_occ` matrix once at sequential main-memory bandwidth `bw_bytes`
/// — the lower bound that shows likelihood and recycle are memory-bound
/// (Fig. 4a).
pub fn dense_access_time_estimate(num_sites: u64, bw_bytes: f64) -> f64 {
    (num_sites as f64) * (SITE_CELLS as f64) / bw_bytes
}

/// The single-threaded SOAPsnp driver.
pub struct SoapSnpPipeline {
    config: SoapSnpConfig,
}

impl SoapSnpPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: SoapSnpConfig) -> Self {
        SoapSnpPipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SoapSnpConfig {
        &self.config
    }

    /// Run over in-memory inputs.
    pub fn run(
        &self,
        reads: &[AlignedRead],
        reference: &Reference,
        priors: &PriorMap,
    ) -> SoapSnpOutput {
        let cfg = &self.config;
        let mut times = ComponentTimes::default();
        let mut stats = PipelineStats::default();

        // ---- cal_p_matrix ----
        let t0 = Instant::now();
        let p_matrix = PMatrix::calibrate(reads, reference, &cfg.params);
        let log_table = LogTable::new();
        times.cal_p = t0.elapsed().as_secs_f64();

        // Dense window buffer, allocated once, recycled per window.
        let mut dense = DenseWindow::alloc(cfg.window_size);
        stats.peak_host_bytes = dense.size_bytes() as u64 + p_matrix.size_bytes() as u64;

        let mut reader = WindowReader::new(
            reads.iter().cloned().map(Ok),
            reference.len() as u64,
            cfg.window_size,
        );

        let mut tables = Vec::new();
        let mut text = Vec::new();
        loop {
            // ---- read_site ----
            let t0 = Instant::now();
            let window = match reader.next_window().expect("in-memory reads are valid") {
                Some(w) => w,
                None => break,
            };
            times.read_site += t0.elapsed().as_secs_f64();

            // ---- counting (dense) ----
            let t0 = Instant::now();
            let summaries = dense.count(&window);
            times.counting += t0.elapsed().as_secs_f64();

            // ---- likelihood (Algorithm 1, site by site) ----
            let t0 = Instant::now();
            let type_likely: Vec<_> = (0..window.len())
                .map(|site| likelihood_dense_site(dense.site(site), &p_matrix, &log_table))
                .collect();
            times.likelihood_comp += t0.elapsed().as_secs_f64();

            // ---- posterior ----
            let t0 = Instant::now();
            let mut rows = Vec::with_capacity(window.len());
            for site in 0..window.len() {
                let pos = window.start + site as u64;
                let ref_base = reference.seq[pos as usize];
                let row = posterior(
                    &type_likely[site],
                    &summaries[site],
                    ref_base,
                    priors.get(pos),
                    &cfg.params,
                );
                if row.is_variant() {
                    stats.snp_count += 1;
                }
                rows.push(row);
            }
            times.posterior += t0.elapsed().as_secs_f64();

            // ---- output (plain text) ----
            let t0 = Instant::now();
            let table = SnpTable::new(reference.name.clone(), window.start, rows);
            table.write_text(&mut text).expect("in-memory write");
            times.output += t0.elapsed().as_secs_f64();

            // ---- recycle (dense re-initialization of the used sites) ----
            let t0 = Instant::now();
            dense.recycle_sites(window.len());
            times.recycle += t0.elapsed().as_secs_f64();

            stats.num_sites += window.len() as u64;
            stats.num_obs += window.total_obs() as u64;
            stats.windows += 1;
            tables.push(table);
        }

        SoapSnpOutput {
            tables,
            text,
            times,
            stats,
        }
    }
}

/// Multi-threaded SOAPsnp (§VI-A): the paper reports that a 16-thread
/// port of SOAPsnp gains only 3–4x because the algorithm is bound by
/// memory bandwidth, which justifies the move to the GPU. This variant
/// parallelizes the per-site likelihood scans (sites are independent)
/// and moves text serialization to a writer thread fed through a bounded
/// channel with ordered reassembly, while keeping the dense
/// representation; results stay bit-identical.
pub struct SoapSnpParallelPipeline {
    config: SoapSnpConfig,
}

impl SoapSnpParallelPipeline {
    /// Create a parallel pipeline (uses the global rayon pool).
    pub fn new(config: SoapSnpConfig) -> Self {
        SoapSnpParallelPipeline { config }
    }

    /// Run over in-memory inputs; same output as [`SoapSnpPipeline`].
    pub fn run(
        &self,
        reads: &[AlignedRead],
        reference: &Reference,
        priors: &PriorMap,
    ) -> SoapSnpOutput {
        use crossbeam::channel::bounded;
        use gsnp_core::stream::OrderedReassembler;
        use rayon::prelude::*;
        let cfg = &self.config;
        let mut times = ComponentTimes::default();
        let mut stats = PipelineStats::default();

        let t0 = Instant::now();
        let p_matrix = PMatrix::calibrate(reads, reference, &cfg.params);
        let log_table = LogTable::new();
        times.cal_p = t0.elapsed().as_secs_f64();

        let mut dense = DenseWindow::alloc(cfg.window_size);
        stats.peak_host_bytes = dense.size_bytes() as u64 + p_matrix.size_bytes() as u64;

        let mut reader = WindowReader::new(
            reads.iter().cloned().map(Ok),
            reference.len() as u64,
            cfg.window_size,
        );

        // Writer thread: serializes completed windows to text while the
        // main loop scans the next window. The reassembler guarantees the
        // emitted file is in window order — byte-identical to the
        // sequential pipeline's output (tested).
        let (table_tx, table_rx) = bounded::<(usize, SnpTable)>(2);
        let (tables, text, output_time) = std::thread::scope(|s| {
            let writer = s.spawn(move || {
                let mut reasm = OrderedReassembler::new();
                let mut tables = Vec::new();
                let mut text = Vec::new();
                let mut output_time = 0.0f64;
                for (idx, table) in table_rx.iter() {
                    // In-order arrival takes the allocation-free fast path.
                    let mut next = reasm.offer(idx, table);
                    while let Some(table) = next {
                        let t0 = Instant::now();
                        table.write_text(&mut text).expect("in-memory write");
                        output_time += t0.elapsed().as_secs_f64();
                        tables.push(table);
                        next = reasm.pop_ready();
                    }
                }
                assert!(reasm.is_drained(), "parallel SOAPsnp writer lost a window");
                (tables, text, output_time)
            });

            let mut idx = 0usize;
            loop {
                let t0 = Instant::now();
                let window = match reader.next_window().expect("in-memory reads are valid") {
                    Some(w) => w,
                    None => break,
                };
                times.read_site += t0.elapsed().as_secs_f64();

                let t0 = Instant::now();
                let summaries = dense.count(&window);
                times.counting += t0.elapsed().as_secs_f64();

                // Parallel per-site dense scans: sites are independent, so
                // the parallel result is bit-identical to the sequential
                // one.
                let t0 = Instant::now();
                let type_likely: Vec<_> = (0..window.len())
                    .into_par_iter()
                    .map(|site| likelihood_dense_site(dense.site(site), &p_matrix, &log_table))
                    .collect();
                times.likelihood_comp += t0.elapsed().as_secs_f64();

                let t0 = Instant::now();
                let mut rows = Vec::with_capacity(window.len());
                for site in 0..window.len() {
                    let pos = window.start + site as u64;
                    let row = posterior(
                        &type_likely[site],
                        &summaries[site],
                        reference.seq[pos as usize],
                        priors.get(pos),
                        &cfg.params,
                    );
                    if row.is_variant() {
                        stats.snp_count += 1;
                    }
                    rows.push(row);
                }
                times.posterior += t0.elapsed().as_secs_f64();

                let table = SnpTable::new(reference.name.clone(), window.start, rows);
                if table_tx.send((idx, table)).is_err() {
                    break; // writer died; its panic surfaces at join
                }
                idx += 1;

                let t0 = Instant::now();
                dense.recycle_sites(window.len());
                times.recycle += t0.elapsed().as_secs_f64();

                stats.num_sites += window.len() as u64;
                stats.num_obs += window.total_obs() as u64;
                stats.windows += 1;
            }
            drop(table_tx);
            writer
                .join()
                .unwrap_or_else(|e| std::panic::resume_unwind(e))
        });
        times.output = output_time;

        SoapSnpOutput {
            tables,
            text,
            times,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsnp_core::pipeline::{GsnpConfig, GsnpPipeline};
    use seqio::synth::{Dataset, SynthConfig};

    fn small_dataset(seed: u64) -> Dataset {
        // Dense scans are expensive; keep parity tests compact.
        let mut cfg = SynthConfig::tiny(seed);
        cfg.num_sites = 1_500;
        cfg.read_len = 40;
        Dataset::generate(cfg)
    }

    fn soapsnp(window: usize, read_len: usize) -> SoapSnpPipeline {
        SoapSnpPipeline::new(SoapSnpConfig {
            window_size: window,
            read_len,
            ..Default::default()
        })
    }

    #[test]
    fn formula_1_estimate() {
        // 247M sites at 4.2 GB/s ≈ 7708 s — the paper's Fig. 4a regime.
        let t = dense_access_time_estimate(247_000_000, 4.2e9);
        assert!((t - 247_000_000.0 * 131_072.0 / 4.2e9).abs() < 1e-6);
        assert!(t > 7_000.0 && t < 8_000.0, "{t}");
    }

    #[test]
    fn processes_all_sites_and_emits_text() {
        let d = small_dataset(81);
        let out = soapsnp(500, d.config.read_len).run(&d.reads, &d.reference, &d.priors);
        assert_eq!(out.stats.num_sites, d.config.num_sites);
        assert_eq!(out.stats.windows, 3);
        let text = String::from_utf8(out.text.clone()).unwrap();
        assert_eq!(text.lines().count() as u64, d.config.num_sites);
        assert!(text.lines().all(|l| l.split('\t').count() == 17));
    }

    #[test]
    fn component_times_are_recorded() {
        let d = small_dataset(82);
        let out = soapsnp(500, d.config.read_len).run(&d.reads, &d.reference, &d.priors);
        assert!(out.times.cal_p > 0.0);
        assert!(out.times.likelihood_comp > 0.0);
        assert!(out.times.recycle > 0.0);
        assert_eq!(out.times.likelihood_sort, 0.0, "dense scan needs no sort");
        assert!(out.times.total() > 0.0);
    }

    #[test]
    fn window_size_does_not_change_results() {
        let d = small_dataset(83);
        let a = soapsnp(250, d.config.read_len).run(&d.reads, &d.reference, &d.priors);
        let b = soapsnp(1_500, d.config.read_len).run(&d.reads, &d.reference, &d.priors);
        assert_eq!(a.all_rows(), b.all_rows());
    }

    /// The §IV-G headline property: GSNP output is bit-identical to
    /// SOAPsnp output on the same input.
    #[test]
    fn gsnp_matches_soapsnp_exactly() {
        let d = small_dataset(84);
        let soap = soapsnp(500, d.config.read_len).run(&d.reads, &d.reference, &d.priors);
        let gsnp = GsnpPipeline::new(GsnpConfig {
            window_size: 700, // deliberately different windowing
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        let a = soap.all_rows();
        let b = gsnp.all_rows();
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x, y, "row {i} diverged");
        }
    }

    #[test]
    fn parallel_soapsnp_is_bit_identical_to_sequential() {
        let d = small_dataset(86);
        let seq = soapsnp(500, d.config.read_len).run(&d.reads, &d.reference, &d.priors);
        let par = SoapSnpParallelPipeline::new(SoapSnpConfig {
            window_size: 500,
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(seq.all_rows(), par.all_rows());
        assert_eq!(seq.text, par.text);
    }

    #[test]
    fn gsnp_compressed_output_decodes_to_soapsnp_rows() {
        let d = small_dataset(85);
        let soap = soapsnp(500, d.config.read_len).run(&d.reads, &d.reference, &d.priors);
        let gsnp = GsnpPipeline::new(GsnpConfig::default()).run(&d.reads, &d.reference, &d.priors);
        let decoded: Vec<SnpRow> = compress::column::WindowStream::new(&gsnp.compressed)
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
            .into_iter()
            .flat_map(|t| t.rows)
            .collect();
        assert_eq!(decoded, soap.all_rows());
    }
}
