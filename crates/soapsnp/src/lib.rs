//! # soapsnp — the dense-matrix CPU baseline
//!
//! A from-scratch reimplementation of SOAPsnp 1.03's computational
//! structure (Li et al., Genome Research 2009), the baseline GSNP is
//! evaluated against. Single-threaded, dense `base_occ` representation
//! (131,072 bytes per site), full-matrix canonical scans in the likelihood
//! component, full-buffer reinitialization in `recycle`, plain-text
//! 17-column output.
//!
//! The Bayesian model is imported from `gsnp-core::model`, so the two
//! pipelines produce bit-identical calls (§IV-G) and every speedup
//! measured between them is attributable to data layout and execution
//! strategy alone.

pub mod pipeline;

pub use pipeline::{
    dense_access_time_estimate, SoapSnpConfig, SoapSnpOutput, SoapSnpParallelPipeline,
    SoapSnpPipeline,
};
