//! Sanitizer sweep: every paper kernel runs clean under all four checkers
//! (racecheck, initcheck, boundscheck, leakcheck), each checker catches a
//! seeded defect that an unsanitized device silently accepts, block-order
//! permutation proves the kernels are schedule-invariant, and the hardware
//! counters are byte-identical with the sanitizer on and off.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gsnp::compress::gpu::{dict_gpu, rle_gpu, rledict_gpu};
use gsnp::core::counting::{DenseWindow, SparseWindow};
use gsnp::core::likelihood::{
    likelihood_comp_gpu, likelihood_dense_gpu, likelihood_sort_gpu, likelihood_sparse_site,
    sort_sparse_cpu, upload_dense_transposed, DeviceTables, KernelVariant,
};
use gsnp::core::model::ModelParams;
use gsnp::core::tables::{LogTable, NewPMatrix, PMatrix};
use gsnp::gpu_sim::primitives::{binary_search_indices, exclusive_scan, reduce_sum, unique_sorted};
use gsnp::gpu_sim::{
    check_block_order_invariance, BlockSchedule, Device, GlobalBuffer, SanitizerConfig,
};
use gsnp::seqio::synth::{Dataset, SynthConfig};
use gsnp::seqio::window::WindowReader;
use gsnp::sortnet::batch::{batch_sort, batch_sort_blockmax};
use gsnp::sortnet::multipass::{multipass_sort, noneq_sort, single_pass_sort};
use gsnp::sortnet::Span;

fn sanitized() -> Device {
    Device::m2050().with_sanitizer(SanitizerConfig::all())
}

/// Likelihood-stage fixture: a counted window plus calibrated tables.
struct Fixture {
    sw: SparseWindow,
    dense: DenseWindow,
    p: PMatrix,
    np: NewPMatrix,
    lt: LogTable,
    read_len: usize,
}

fn fixture(seed: u64) -> Fixture {
    let d = Dataset::generate(SynthConfig::tiny(seed));
    let read_len = d.config.read_len;
    let p = PMatrix::calibrate(&d.reads, &d.reference, &ModelParams::default());
    let np = NewPMatrix::precompute(&p);
    let mut wr = WindowReader::new(d.reads.iter().cloned().map(Ok), d.config.num_sites, 1000);
    let w = wr.next_window().unwrap().unwrap();
    let mut dense = DenseWindow::alloc(w.len());
    dense.count(&w);
    let mut sw = SparseWindow::count(&w);
    sort_sparse_cpu(&mut sw);
    Fixture {
        sw,
        dense,
        p,
        np,
        lt: LogTable::new(),
        read_len,
    }
}

/// Spans + data for the sorting-network kernels: many small arrays of
/// varied lengths in one flat buffer.
fn sort_input(seed: u64, arrays: usize) -> (Vec<u32>, Vec<Span>) {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut data = Vec::new();
    let mut spans = Vec::new();
    for _ in 0..arrays {
        let len = (next() % 30 + 1) as usize;
        let start = data.len();
        for _ in 0..len {
            data.push((next() & 0xffff_ffff) as u32);
        }
        spans.push((start, len));
    }
    (data, spans)
}

// -------------------------------------------------------------------
// Positive sweep: every paper kernel is clean under all four checkers
// -------------------------------------------------------------------

#[test]
fn likelihood_variants_clean_under_all_checkers() {
    let f = fixture(101);
    let dev = sanitized();
    let tables = DeviceTables::upload(&dev, &f.p, &f.np, &f.lt);
    let words = dev.upload(&f.sw.words);
    for variant in KernelVariant::ALL {
        let (got, _) = likelihood_comp_gpu(&dev, variant, &words, &f.sw.spans, f.read_len, &tables);
        // The sanitizer must not perturb results: spot-check against host.
        let e = likelihood_sparse_site(f.sw.site_words(0), f.read_len, &f.np, &f.lt);
        assert_eq!(
            got[0],
            e,
            "{} output changed under sanitizer",
            variant.label()
        );
    }
    dev.sanitizer_report()
        .unwrap()
        .assert_clean("likelihood_comp variants");
}

#[test]
fn likelihood_dense_strawman_clean_under_all_checkers() {
    let f = fixture(102);
    let dev = sanitized();
    let tables = DeviceTables::upload(&dev, &f.p, &f.np, &f.lt);
    let sites = f.dense.num_sites();
    let occ = upload_dense_transposed(&dev, &f.dense, sites);
    let _ = likelihood_dense_gpu(&dev, &occ, sites, &tables);
    dev.sanitizer_report()
        .unwrap()
        .assert_clean("likelihood_dense");
}

#[test]
fn likelihood_sort_clean_under_all_checkers() {
    let f = fixture(103);
    let dev = sanitized();
    let words = dev.upload(&f.sw.words);
    let _ = likelihood_sort_gpu(&dev, &words, &f.sw.spans);
    dev.sanitizer_report()
        .unwrap()
        .assert_clean("likelihood multipass sort");
}

#[test]
fn sortnet_kernels_clean_under_all_checkers() {
    let (host, spans) = sort_input(104, 64);
    let cap = spans
        .iter()
        .map(|&(_, l)| l)
        .max()
        .unwrap()
        .next_power_of_two();

    let dev = sanitized();
    let data = dev.upload(&host);
    let _ = batch_sort(&dev, &data, &spans, cap, 4);
    let data = dev.upload(&host);
    let _ = batch_sort_blockmax(&dev, &data, &spans, cap);
    let data = dev.upload(&host);
    let _ = multipass_sort(&dev, &data, &spans);
    let data = dev.upload(&host);
    let _ = single_pass_sort(&dev, &data, &spans);
    let data = dev.upload(&host);
    let _ = noneq_sort(&dev, &data, &spans);
    dev.sanitizer_report()
        .unwrap()
        .assert_clean("sortnet batch + multipass kernels");
}

#[test]
fn compress_kernels_clean_under_all_checkers() {
    // Run-heavy data (genotype-stream-like) exercising RLE and dict stages.
    let host: Vec<u32> = (0..4096u32).map(|i| (i / 37) % 11).collect();
    let dev = sanitized();
    let input = dev.upload(&host);
    let _ = rle_gpu(&dev, &input);
    let mut w = gsnp::compress::bitio::BitWriter::default();
    let _ = dict_gpu(&dev, &host, &mut w);
    let _ = rledict_gpu(&dev, &host);
    dev.sanitizer_report()
        .unwrap()
        .assert_clean("compress GPU stages");
}

#[test]
fn primitives_clean_under_all_checkers() {
    let dev = sanitized();
    let nums: Vec<u64> = (0..3000u64).collect();
    let input = dev.upload(&nums);
    let (total, _) = reduce_sum(&dev, &input);
    assert_eq!(total, nums.iter().sum::<u64>());

    let flags: Vec<u32> = (0..3000u32).map(|i| u32::from(i % 7 == 0)).collect();
    let fbuf = dev.upload(&flags);
    let _ = exclusive_scan(&dev, &fbuf);

    let sorted: Vec<u32> = (0..3000u32).map(|i| i / 5).collect();
    let sbuf = dev.upload(&sorted);
    let (dict, _) = unique_sorted(&dev, &sbuf);
    let dict_buf = dev.upload(&dict);
    let queries = dev.upload(&sorted);
    let _ = binary_search_indices(&dev, &dict_buf, &queries);

    dev.sanitizer_report()
        .unwrap()
        .assert_clean("gpu-sim primitives");
}

/// Counting-style kernel: the paper's per-site occurrence counting maps to
/// an atomic histogram on the device; sweep its access pattern too.
#[test]
fn counting_histogram_clean_under_all_checkers() {
    let dev = sanitized();
    let n = 4096usize;
    let items: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761) % 64)
        .collect();
    let input = dev.upload(&items);
    let hist: GlobalBuffer<u32> = dev.alloc(64);
    dev.launch("count_hist", 8, |ctx| {
        let chunk = n / ctx.grid_dim;
        let base = ctx.block_idx * chunk;
        for i in base..base + chunk {
            let v = ctx.ld_co(&input, i) as usize;
            ctx.atomic_add(&hist, v, 1u32);
        }
    });
    assert_eq!(hist.to_vec().iter().map(|&c| c as usize).sum::<usize>(), n);
    dev.sanitizer_report()
        .unwrap()
        .assert_clean("counting histogram");
}

// -------------------------------------------------------------------
// Negative tests: each checker catches a seeded defect that the
// unsanitized device silently accepts
// -------------------------------------------------------------------

#[test]
fn racecheck_catches_non_atomic_conflicting_writes() {
    let kernel = |dev: &Device, buf: &GlobalBuffer<u32>| {
        dev.launch("seeded_race", 4, |ctx| {
            // Defect: every block writes word 0 without an atomic.
            ctx.st_co(buf, 0, ctx.block_idx as u32);
        });
    };

    // Unsanitized device: the defect goes unnoticed.
    let plain = Device::m2050();
    let buf = plain.alloc::<u32>(8);
    kernel(&plain, &buf);
    assert!(plain.sanitizer_report().is_none());

    let dev = sanitized();
    let buf = dev.alloc::<u32>(8);
    kernel(&dev, &buf);
    let report = dev.sanitizer_report().unwrap();
    assert!(
        report.counts.races > 0,
        "racecheck missed the write/write race"
    );
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.kernel == "seeded_race")
        .expect("race diagnostic recorded");
    assert_eq!(diag.index, 0);
    assert_ne!(
        diag.blocks.0, diag.blocks.1,
        "two distinct blocks implicated"
    );
}

#[test]
fn racecheck_accepts_atomic_contention() {
    // The same contention through atomics is the sanctioned pattern.
    let dev = sanitized();
    let buf = dev.alloc::<u32>(8);
    dev.launch("atomic_ok", 4, |ctx| {
        ctx.atomic_add(&buf, 0, 1u32);
    });
    dev.sanitizer_report()
        .unwrap()
        .assert_clean("atomic contention");
}

#[test]
fn initcheck_catches_read_of_dirty_pooled_buffer() {
    let read_first = |dev: &Device, buf: &GlobalBuffer<u32>| {
        dev.launch("seeded_uninit", 1, |ctx| {
            // Defect: word 3 is consumed before anything defines it.
            let v = ctx.ld_co(buf, 3);
            ctx.st_co(buf, 4, v);
        });
    };

    let plain = Device::m2050();
    let buf = plain.alloc_pooled_dirty::<u32>(8);
    read_first(&plain, &buf);
    assert!(plain.sanitizer_report().is_none());

    let dev = sanitized();
    let buf = dev.alloc_pooled_dirty::<u32>(8);
    read_first(&dev, &buf);
    let report = dev.sanitizer_report().unwrap();
    assert!(
        report.counts.uninit_reads > 0,
        "initcheck missed the dirty read"
    );
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.kernel == "seeded_uninit")
        .expect("uninit diagnostic recorded");
    assert_eq!(diag.index, 3);
}

#[test]
fn initcheck_accepts_write_before_read() {
    let dev = sanitized();
    let buf = dev.alloc_pooled_dirty::<u32>(8);
    dev.launch("define_then_use", 1, |ctx| {
        for i in 0..8 {
            ctx.st_co(&buf, i, i as u32);
        }
        let _ = ctx.ld_co(&buf, 3);
    });
    dev.sanitizer_report()
        .unwrap()
        .assert_clean("write-before-read");
}

#[test]
fn boundscheck_panics_with_buffer_index_and_len() {
    // Unsanitized, the same access dies in a bare slice assert with no
    // kernel attribution; sanitized, the diagnostic names everything.
    let dev = sanitized();
    let buf = dev.alloc::<u32>(8);
    let err = catch_unwind(AssertUnwindSafe(|| {
        dev.launch("seeded_oob", 1, |ctx| {
            let _ = ctx.ld_co(&buf, 8); // one past the end
        });
    }))
    .expect_err("out-of-bounds read must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        err.downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .unwrap()
    });
    assert!(msg.contains("boundscheck"), "got: {msg}");
    assert!(msg.contains("seeded_oob"), "kernel named: {msg}");
    assert!(msg.contains("out of bounds (len 8)"), "len reported: {msg}");
    assert!(dev.ledger().sanitizer.oob_accesses > 0);
}

#[test]
fn leakcheck_catches_missing_shared_free() {
    // Unsanitized device: the leak goes unnoticed.
    let plain = Device::m2050();
    plain.launch("leak_ok_unsan", 1, |ctx| {
        let _sm = ctx.shared_alloc::<u32>(32);
        // no shared_free — silently accepted
    });
    assert!(plain.sanitizer_report().is_none());

    let dev = sanitized();
    let err = catch_unwind(AssertUnwindSafe(|| {
        dev.launch("seeded_leak", 1, |ctx| {
            let _sm = ctx.shared_alloc::<u32>(32);
        });
    }))
    .expect_err("shared-memory leak must panic under leakcheck");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        err.downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .unwrap()
    });
    assert!(msg.contains("leakcheck"), "got: {msg}");
    assert!(msg.contains("shared memory still allocated"), "got: {msg}");
    assert!(dev.ledger().sanitizer.shared_leaks > 0);
}

#[test]
fn leakcheck_reports_shared_high_water() {
    let dev = sanitized();
    dev.launch("hw_probe", 2, |ctx| {
        let sm = ctx.shared_alloc::<u64>(100);
        ctx.shared_free(sm);
    });
    let report = dev.sanitizer_report().unwrap();
    report.assert_clean("balanced shared usage");
    assert_eq!(report.counts.shared_high_water, 800);
}

// -------------------------------------------------------------------
// Block-order determinism: permuting block execution order must not
// change any output bit
// -------------------------------------------------------------------

#[test]
fn counting_histogram_is_block_order_invariant() {
    let dev = Device::m2050();
    let n = 2048usize;
    let items: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(40503) % 32).collect();
    let report = check_block_order_invariance(&dev, 4, 0xC0FFEE, |dev| {
        let input = dev.upload(&items);
        let hist: GlobalBuffer<u32> = dev.alloc(32);
        dev.launch("hist_perm", 8, |ctx| {
            let chunk = n / ctx.grid_dim;
            let base = ctx.block_idx * chunk;
            for i in base..base + chunk {
                let v = ctx.ld_co(&input, i) as usize;
                ctx.atomic_add(&hist, v, 1u32);
            }
        });
        vec![hist.raw_snapshot()]
    });
    report.assert_deterministic("counting histogram");
}

#[test]
fn likelihood_is_block_order_invariant() {
    let f = fixture(105);
    let dev = Device::m2050();
    let report = check_block_order_invariance(&dev, 3, 0xBEEF, |dev| {
        let tables = DeviceTables::upload(dev, &f.p, &f.np, &f.lt);
        let words = dev.upload(&f.sw.words);
        let (out, _) = likelihood_comp_gpu(
            dev,
            KernelVariant::Optimized,
            &words,
            &f.sw.spans,
            f.read_len,
            &tables,
        );
        vec![out
            .iter()
            .flat_map(|site| site.iter().map(|v| v.to_bits()))
            .collect()]
    });
    report.assert_deterministic("likelihood_comp optimized");
}

#[test]
fn sort_paths_are_block_order_invariant() {
    let (host, spans) = sort_input(106, 48);
    let cap = spans
        .iter()
        .map(|&(_, l)| l)
        .max()
        .unwrap()
        .next_power_of_two();
    let dev = Device::m2050();

    let report = check_block_order_invariance(&dev, 3, 0xABCD, |dev| {
        let data = dev.upload(&host);
        let _ = batch_sort(dev, &data, &spans, cap, 4);
        vec![data.raw_snapshot()]
    });
    report.assert_deterministic("batch sort");

    let report = check_block_order_invariance(&dev, 3, 0xDCBA, |dev| {
        let data = dev.upload(&host);
        let _ = multipass_sort(dev, &data, &spans);
        vec![data.raw_snapshot()]
    });
    report.assert_deterministic("multipass sort");
}

#[test]
fn order_sensitive_kernel_is_caught_by_determinism_check() {
    let dev = Device::m2050();
    let report = check_block_order_invariance(&dev, 6, 0x5EED, |dev| {
        let buf: GlobalBuffer<u32> = dev.alloc(1);
        dev.launch("order_hash", 16, |ctx| {
            // Defect: non-commutative read-modify-write across blocks.
            let v = ctx.ld_co(&buf, 0);
            ctx.st_co(
                &buf,
                0,
                v.wrapping_mul(31).wrapping_add(ctx.block_idx as u32),
            );
        });
        vec![buf.raw_snapshot()]
    });
    assert!(
        !report.is_deterministic(),
        "order-dependent kernel must diverge under permutation"
    );
    let d = report.divergence.unwrap();
    assert_eq!(d.snapshot, 0);
}

#[test]
fn permuted_schedule_is_restored_after_check() {
    let dev = Device::m2050();
    dev.set_block_schedule(BlockSchedule::Permuted { seed: 7 });
    let _ = check_block_order_invariance(&dev, 2, 1, |dev| {
        let buf: GlobalBuffer<u32> = dev.alloc(4);
        dev.launch("noop", 2, |ctx| ctx.st_co(&buf, ctx.block_idx, 1));
        vec![buf.raw_snapshot()]
    });
    assert_eq!(dev.block_schedule(), BlockSchedule::Permuted { seed: 7 });
}

// -------------------------------------------------------------------
// Counter neutrality: enabling the sanitizer must not move a single
// Table III hardware counter
// -------------------------------------------------------------------

#[test]
fn hw_counters_identical_with_sanitizer_on_and_off() {
    let f = fixture(107);
    let run = |dev: &Device| {
        let tables = DeviceTables::upload(dev, &f.p, &f.np, &f.lt);
        let words = dev.upload(&f.sw.words);
        let mut all = Vec::new();
        for variant in KernelVariant::ALL {
            let (_, stats) =
                likelihood_comp_gpu(dev, variant, &words, &f.sw.spans, f.read_len, &tables);
            all.push(stats.counters);
        }
        let sorted = likelihood_sort_gpu(dev, &words, &f.sw.spans);
        all.push(sorted.total().counters);
        all
    };
    let off = run(&Device::m2050());
    let on = run(&sanitized());
    assert_eq!(off, on, "sanitizer perturbed the Table III counters");
}
