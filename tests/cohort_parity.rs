//! The tentpole guarantee of cohort calling: a cohort run of N samples
//! produces, per sample, results — tables AND the compressed stream —
//! byte-identical to N independent single-sample runs given the cohort's
//! pooled tables, at every `(samples, devices, launch_batch)` shape. The
//! amortization must also be visible in the ledgers: the cohort pays ONE
//! table upload per device, so its summed H2D bytes equal the sum of the
//! single runs' minus the (N−1 per device-delta) redundant table uploads
//! — O(devices), not O(N·devices).

use std::sync::Arc;

use proptest::prelude::*;

use gsnp::core::cohort::{
    BadSiteList, CohortCallConfig, CohortOutput, CohortPipeline, QualityGates, SampleReads,
};
use gsnp::core::pipeline::{GsnpConfig, GsnpPipeline};
use gsnp::core::tables::SharedTables;
use gsnp::seqio::synth::{Cohort, CohortConfig, SynthConfig};

fn base_cfg(launch_batch: usize, num_devices: usize) -> GsnpConfig {
    GsnpConfig {
        window_size: 700,
        launch_batch,
        pipeline_depth: 2,
        num_devices,
        ..Default::default()
    }
}

fn cohort_data(num_samples: usize, seed: u64, num_sites: u64) -> Cohort {
    let mut base = SynthConfig::tiny(seed);
    base.num_sites = num_sites;
    Cohort::generate(CohortConfig {
        base,
        num_samples,
        shared_rate: 0.6,
    })
}

fn run_cohort(c: &Cohort, base: GsnpConfig) -> CohortOutput {
    let inputs: Vec<SampleReads<'_>> = c
        .samples
        .iter()
        .map(|s| SampleReads {
            name: &s.name,
            reads: &s.reads,
        })
        .collect();
    CohortPipeline::new(CohortCallConfig {
        base,
        ..Default::default()
    })
    .run(&inputs, &c.reference, &c.priors)
}

/// The cohort's pooled calibration, as a single-sample run would inject it.
fn pooled_tables(c: &Cohort) -> Arc<SharedTables> {
    Arc::new(SharedTables::calibrate_pooled(
        c.samples.iter().map(|s| s.reads.as_slice()),
        &c.reference,
        &GsnpConfig::default().params,
    ))
}

/// Sum one run's ledger H2D bytes.
fn h2d_of(ledgers: &[gsnp::gpu_sim::DeviceLedger]) -> u64 {
    ledgers.iter().map(|l| l.counters.h2d_bytes).sum()
}

fn check_parity(c: &Cohort, launch_batch: usize, num_devices: usize) {
    let out = run_cohort(c, base_cfg(launch_batch, num_devices));
    let shape = format!(
        "samples {} batch {launch_batch} x{num_devices}",
        c.samples.len()
    );
    assert_eq!(out.stats.samples, c.samples.len() as u64, "{shape}");

    // Per-sample byte-identity against independent single runs injected
    // with the cohort's tables (calibration is pooled by design — that IS
    // the shared work — so the comparable single run shares it too).
    let shared = pooled_tables(c);
    let mut singles_h2d = 0u64;
    for (sample, smp) in c.samples.iter().enumerate() {
        let single = GsnpPipeline::new(GsnpConfig {
            shared_tables: Some(Arc::clone(&shared)),
            ..base_cfg(launch_batch, 1)
        })
        .run(&smp.reads, &c.reference, &c.priors);
        let lane = &out.samples[sample];
        assert_eq!(lane.name, smp.name);
        assert_eq!(
            lane.tables, single.tables,
            "{shape}: sample {sample} tables"
        );
        assert_eq!(
            lane.compressed, single.compressed,
            "{shape}: sample {sample} compressed stream"
        );
        assert_eq!(lane.snp_count, single.stats.snp_count, "{shape}");
        singles_h2d += h2d_of(&single.stats.ledgers);
    }

    // Upload amortization is O(devices), not O(N·devices): each single
    // run paid one table upload; the cohort paid `num_devices` total.
    let n = c.samples.len() as u64;
    let table = out.stats.table_bytes;
    assert_eq!(
        h2d_of(&out.stats.ledgers),
        singles_h2d - n * table + num_devices as u64 * table,
        "{shape}: table upload bytes must amortize across samples"
    );
}

/// The acceptance grid: samples {1,4,8} × devices {1,4} × batch {1,8}.
/// 8-sample shapes run on a smaller genome to keep the grid fast.
#[test]
fn cohort_grid_is_byte_identical_to_single_runs() {
    for &num_samples in &[1usize, 4, 8] {
        let sites = if num_samples >= 8 { 3_000 } else { 6_000 };
        let c = cohort_data(num_samples, 0xC0_0811 + num_samples as u64, sites);
        for &num_devices in &[1usize, 4] {
            for &launch_batch in &[1usize, 8] {
                check_parity(&c, launch_batch, num_devices);
            }
        }
    }
}

/// A cohort with gates off and an empty bad-site list is the identity
/// configuration; with a planted bad site, exactly that site is NoCalled
/// in every sample and everything else is untouched.
#[test]
fn bad_site_forcing_nocalls_one_site_everywhere() {
    let c = cohort_data(3, 0xBA_D051, 4_000);
    let clean = run_cohort(&c, base_cfg(2, 1));

    // Pick a site some sample actually called as a variant.
    let target = clean.samples[0]
        .all_rows()
        .iter()
        .position(gsnp::seqio::SnpRow::is_variant)
        .expect("expected at least one variant") as u64;

    let inputs: Vec<SampleReads<'_>> = c
        .samples
        .iter()
        .map(|s| SampleReads {
            name: &s.name,
            reads: &s.reads,
        })
        .collect();
    let mut bad_sites = BadSiteList::new();
    bad_sites.threshold = 1;
    bad_sites.absorb(&[target]);
    let forced = CohortPipeline::new(CohortCallConfig {
        base: base_cfg(2, 1),
        gates: QualityGates::default(),
        bad_sites,
    })
    .run(&inputs, &c.reference, &c.priors);

    for (sample, lane) in forced.samples.iter().enumerate() {
        let rows = lane.all_rows();
        assert_eq!(rows[target as usize].genotype, b'N', "sample {sample}");
        let clean_rows = clean.samples[sample].all_rows();
        for (pos, (a, b)) in rows.iter().zip(&clean_rows).enumerate() {
            if pos as u64 != target {
                assert_eq!(a, b, "sample {sample} site {pos} changed");
            }
        }
    }
    assert!(forced.samples[0].forced_nocalls >= 1);
}

/// Quality gates replace failing calls with NoCalls that preserve depth,
/// and gated rows are never variants.
#[test]
fn quality_gates_emit_nocalls() {
    let c = cohort_data(2, 0x6A7E5, 4_000);
    let inputs: Vec<SampleReads<'_>> = c
        .samples
        .iter()
        .map(|s| SampleReads {
            name: &s.name,
            reads: &s.reads,
        })
        .collect();
    let gated = CohortPipeline::new(CohortCallConfig {
        base: base_cfg(2, 1),
        gates: QualityGates {
            min_quality: 20,
            min_depth: 4,
        },
        bad_sites: BadSiteList::new(),
    })
    .run(&inputs, &c.reference, &c.priors);
    let clean = run_cohort(&c, base_cfg(2, 1));

    let total_gated: u64 = gated.samples.iter().map(|s| s.gated_nocalls).sum();
    assert!(total_gated > 0, "tiny synth data must trip a 20/4 gate");
    for (lane, clean_lane) in gated.samples.iter().zip(&clean.samples) {
        assert!(lane.snp_count <= clean_lane.snp_count);
        for (a, b) in lane.all_rows().iter().zip(clean_lane.all_rows()) {
            if a != &b {
                // Every divergence is a gate replacement: same evidence
                // context, call removed.
                assert_eq!(a.genotype, b'N');
                assert_eq!(a.depth, b.depth);
                assert_eq!(a.ref_base, b.ref_base);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random (samples, devices, batch, seed) shapes hold per-sample
    /// byte-identity and the O(devices) upload relation.
    #[test]
    fn cohort_parity_holds_on_random_shapes(
        num_samples in 1usize..=4,
        num_devices in 1usize..=3,
        launch_batch in 1usize..=4,
        seed in 0u64..400,
    ) {
        let c = cohort_data(num_samples, 0xC0_F00D + seed, 2_500);
        check_parity(&c, launch_batch, num_devices);
    }
}
