//! The recycle path must be invisible in the output: a run with pooled
//! device buffers and recycled host arenas (`pooled: true`, the default)
//! produces byte-identical result tables and compressed bytes to a run
//! that allocates everything fresh (`pooled: false`), at every pipeline
//! depth (1 = serial executor, 2..=4 = streamed).

use proptest::prelude::*;

use gsnp::core::pipeline::{GsnpConfig, GsnpPipeline};
use gsnp::seqio::synth::{Dataset, SynthConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pooled_run_is_byte_identical_to_fresh(
        seed in 0u64..1_000_000,
        num_sites in 800u64..3_000,
        depth_deci in 40u32..140,        // sequencing depth 4.0..14.0
        snp_per_mille in 0u32..5,
        window_size in 137usize..1_200,
        pipeline_depth in 1usize..=4,
        gpu_output in any::<bool>(),
    ) {
        let mut sc = SynthConfig::tiny(seed);
        sc.num_sites = num_sites;
        sc.depth = f64::from(depth_deci) / 10.0;
        sc.snp_rate = f64::from(snp_per_mille) / 1_000.0;
        let d = Dataset::generate(sc);

        let cfg = |pooled| GsnpConfig {
            window_size,
            gpu_output,
            pipeline_depth,
            pooled,
            ..Default::default()
        };
        let fresh = GsnpPipeline::new(cfg(false)).run(&d.reads, &d.reference, &d.priors);
        let pooled = GsnpPipeline::new(cfg(true)).run(&d.reads, &d.reference, &d.priors);

        prop_assert_eq!(&pooled.tables, &fresh.tables);
        prop_assert_eq!(&pooled.compressed, &fresh.compressed);
        prop_assert_eq!(pooled.stats.num_sites, fresh.stats.num_sites);
        prop_assert_eq!(pooled.stats.snp_count, fresh.stats.snp_count);

        // The pooled run must actually recycle once the window count
        // exceeds the number of arenas the streaming pipeline can hold in
        // flight (producer + device + posterior stages plus two bounded
        // channels of `pipeline_depth` each), and the fresh run must never
        // park anything.
        let windows = pooled.stats.windows;
        let in_flight = 2 * pipeline_depth + 3;
        if windows as usize > in_flight {
            prop_assert!(pooled.stats.arena.hits > 0, "no arena reuse over {windows} windows");
        }
        prop_assert_eq!(fresh.stats.arena.hits, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Initcheck property: a dirty pooled acquisition (`alloc_pooled_dirty`)
    /// is never observed before being fully overwritten, at every pipeline
    /// depth. The sanitized pipeline poisons every dirty word and reports a
    /// read of any word the kernels did not define first; races between
    /// blocks would surface here too.
    #[test]
    fn dirty_pooled_buffers_never_read_before_overwrite(
        seed in 0u64..1_000_000,
        num_sites in 800u64..2_400,
        window_size in 137usize..900,
        pipeline_depth in 1usize..=4,
        gpu_output in any::<bool>(),
    ) {
        let mut sc = SynthConfig::tiny(seed);
        sc.num_sites = num_sites;
        let d = Dataset::generate(sc);

        let out = GsnpPipeline::new(GsnpConfig {
            window_size,
            gpu_output,
            pipeline_depth,
            sanitize: true,
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);

        let s = out.stats.sanitizer;
        prop_assert_eq!(s.uninit_reads, 0, "uninit reads at depth {}: {:?}", pipeline_depth, s);
        prop_assert_eq!(s.races, 0, "races at depth {}: {:?}", pipeline_depth, s);
        prop_assert!(s.is_clean(), "sanitizer findings at depth {}: {:?}", pipeline_depth, s);
    }
}

/// Direct (non-proptest) check that the second window onward recycles
/// both host arenas and device buffers, and that the ledger surfaces it.
#[test]
fn steady_state_recycles_arenas_and_device_buffers() {
    let mut sc = SynthConfig::tiny(424_242);
    sc.num_sites = 20_000;
    let d = Dataset::generate(sc);
    let out = GsnpPipeline::new(GsnpConfig {
        window_size: 1_000,
        ..Default::default()
    })
    .run(&d.reads, &d.reference, &d.priors);

    assert_eq!(out.stats.windows, 20);
    // Misses only while the pipeline fills (the default depth-2 streaming
    // executor batches 2 windows per launch group and can hold
    // ~(2·depth+3)·batch = 14 arenas in flight, but a single-CPU host
    // drains stages promptly, so windows past the fill recycle); every
    // checkout is either a hit or a miss.
    // One checkout per window plus the end-of-input probe that discovers
    // the reader is exhausted.
    let a = out.stats.arena;
    assert_eq!(a.hits + a.misses, 21, "arena stats {a:?}");
    assert!(a.hits >= 2, "arena hits {a:?}");
}
