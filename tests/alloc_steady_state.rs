//! Pins the allocation-free window loop: after a warmup pass has grown
//! every arena vector, device pool class, and thread-local scratch to its
//! high-water capacity, re-running the same window sequence through the
//! read_site → counting → likelihood → posterior hot path performs ZERO
//! heap allocations per window. This is the measurable content of the
//! paper's claim that the sparse representation makes `recycle` trivial
//! (§IV-B): nothing is freed, nothing is re-allocated — buffers are
//! cleared and refilled in place.
//!
//! The output stage is excluded: its products (result tables, the growing
//! compressed file) are retained by design, so "allocation-free" cannot
//! apply to them.

use gsnp::core::arena::WindowArena;
use gsnp::core::likelihood::{
    likelihood_comp_gpu_into, likelihood_sort_gpu_into, DeviceTables, KernelVariant,
};
use gsnp::core::model::posterior;
use gsnp::core::pipeline::GsnpConfig;
use gsnp::core::tables::{LogTable, NewPMatrix, PMatrix};
use gsnp::gpu_sim::Device;
use gsnp::seqio::result::SnpRow;
use gsnp::seqio::synth::{Dataset, SynthConfig};
use gsnp::seqio::window::{OwnedReads, WindowReader};

// The counting allocator lives in `testalloc`: its `GlobalAlloc` impl is
// the workspace's one sanctioned use of `unsafe`, quarantined there so this
// crate (and every other) can forbid unsafe code outright.
#[global_allocator]
static ALLOCATOR: testalloc::CountingAlloc = testalloc::CountingAlloc;

use testalloc::allocs;

/// One full pass of the hot path over the dataset, reusing `arena` and
/// `rows`. Returns the per-window allocation deltas observed.
fn run_pass(
    d: &Dataset,
    dev: &Device,
    tables: &DeviceTables,
    cfg: &GsnpConfig,
    reader: &mut WindowReader<OwnedReads>,
    arena: &mut WindowArena,
    rows: &mut Vec<SnpRow>,
) -> Vec<u64> {
    reader.restart(d.reads.clone());
    // Preallocated so the bookkeeping `push` below never reallocates inside
    // a measured region (the harness must not count its own heap use).
    let mut deltas = Vec::with_capacity(64);
    loop {
        let before = allocs();
        if !reader
            .next_window_into(&mut arena.window)
            .expect("synthetic reads are valid")
        {
            break;
        }
        arena.sw.count_into(&arena.window);
        let words = dev.upload_pooled(&arena.sw.words);
        likelihood_sort_gpu_into(dev, &words, &arena.sw.spans, &mut arena.sort_scratch);
        let read_len = max_read_len(&arena.sw.words);
        likelihood_comp_gpu_into(
            dev,
            cfg.variant,
            &words,
            &arena.sw.spans,
            read_len,
            tables,
            &mut arena.type_likely,
        );
        drop(words);
        rows.clear();
        for (site, (tl, summary)) in arena
            .type_likely
            .iter()
            .zip(&arena.sw.summaries)
            .enumerate()
        {
            let pos = arena.window.start + site as u64;
            rows.push(posterior(
                tl,
                summary,
                d.reference.seq[pos as usize],
                d.priors.get(pos),
                &cfg.params,
            ));
        }
        deltas.push(allocs() - before);
    }
    deltas
}

fn max_read_len(words: &[u32]) -> usize {
    let mut max_coord = 0u8;
    for &w in words {
        let (_, _, coord, _, _) = gsnp::core::baseword::unpack(w);
        max_coord = max_coord.max(coord);
    }
    usize::from(max_coord) + 1
}

#[test]
fn steady_state_window_loop_is_allocation_free() {
    // The rayon shim runs serially on a single-CPU host; with worker
    // threads it would allocate per spawn, which is not what this test
    // pins. Skip on multi-core machines.
    if std::thread::available_parallelism().map_or(1, usize::from) > 1 {
        eprintln!("skipping: requires a serial (single-thread) rayon backend");
        return;
    }

    let mut sc = SynthConfig::tiny(20_260_807);
    sc.num_sites = 8_000;
    let d = Dataset::generate(sc);
    let cfg = GsnpConfig {
        window_size: 1_000,
        variant: KernelVariant::Optimized,
        ..Default::default()
    };

    let dev = Device::new(cfg.device.clone());
    let p_matrix = PMatrix::calibrate(&d.reads, &d.reference, &cfg.params);
    let new_p = NewPMatrix::precompute(&p_matrix);
    let log_table = LogTable::new();
    let tables = DeviceTables::upload(&dev, &p_matrix, &new_p, &log_table);

    let mut reader =
        WindowReader::from_reads(Vec::new(), d.reference.len() as u64, cfg.window_size);
    let mut arena = WindowArena::default();
    let mut rows = Vec::new();

    // Warmup: grows every buffer to its high-water mark and parks the
    // device buffers in the pool.
    let warm = run_pass(&d, &dev, &tables, &cfg, &mut reader, &mut arena, &mut rows);
    assert_eq!(warm.len(), 8, "expected 8 windows");
    assert!(
        warm.iter().sum::<u64>() > 0,
        "warmup pass must allocate (fresh buffers)"
    );

    // Steady state: identical window sequence, warmed buffers — zero
    // allocations in every window.
    let steady = run_pass(&d, &dev, &tables, &cfg, &mut reader, &mut arena, &mut rows);
    assert_eq!(steady.len(), 8);
    assert_eq!(
        steady,
        vec![0u64; 8],
        "steady-state windows must not allocate"
    );

    // The device pool must be what made this possible: the steady pass
    // served every buffer from the free lists.
    let ledger = dev.ledger();
    assert!(ledger.pool.hits > 0, "pool stats: {:?}", ledger.pool);
}

/// One batched pass over the dataset: windows accumulate into `arenas`
/// (up to `batch` at a time), their sparse arrays concatenate into the
/// reused scratch vectors, and ONE upload + ONE sort launch group + ONE
/// fused counting+likelihood launch covers the whole batch — the
/// mega-batched hot path of `pipeline.rs`, hand-rolled so the counting
/// allocator can watch it. Returns per-batch allocation deltas.
#[allow(clippy::too_many_arguments)]
fn run_batched_pass(
    d: &Dataset,
    dev: &Device,
    tables: &DeviceTables,
    cfg: &GsnpConfig,
    batch: usize,
    reader: &mut WindowReader<OwnedReads>,
    arenas: &mut [WindowArena],
    scratch: &mut BatchScratch,
    rows: &mut Vec<SnpRow>,
) -> Vec<u64> {
    use gsnp::core::likelihood::likelihood_comp_fused_gpu_into;

    reader.restart(d.reads.clone());
    let mut deltas = Vec::with_capacity(64);
    let mut eof = false;
    while !eof {
        let before = allocs();
        let mut k = 0;
        while k < batch {
            if !reader
                .next_window_into(&mut arenas[k].window)
                .expect("synthetic reads are valid")
            {
                eof = true;
                break;
            }
            k += 1;
        }
        if k == 0 {
            break;
        }
        scratch.words.clear();
        scratch.spans.clear();
        scratch.site_off.clear();
        for arena in arenas.iter_mut().take(k) {
            arena.sw.count_words_into(&arena.window);
            let base = scratch.words.len();
            scratch.site_off.push(scratch.spans.len());
            scratch.words.extend_from_slice(&arena.sw.words);
            scratch
                .spans
                .extend(arena.sw.spans.iter().map(|&(off, len)| (base + off, len)));
        }
        scratch.site_off.push(scratch.spans.len());

        let words = dev.upload_pooled(&scratch.words);
        likelihood_sort_gpu_into(dev, &words, &scratch.spans, &mut scratch.sort_scratch);
        let read_len = max_read_len(&scratch.words);
        likelihood_comp_fused_gpu_into(
            dev,
            cfg.variant,
            &words,
            &scratch.spans,
            read_len,
            tables,
            &mut scratch.type_likely,
            &mut scratch.summaries,
        );
        drop(words);

        rows.clear();
        for (j, arena) in arenas.iter_mut().enumerate().take(k) {
            let (s0, s1) = (scratch.site_off[j], scratch.site_off[j + 1]);
            arena.type_likely.clear();
            arena
                .type_likely
                .extend_from_slice(&scratch.type_likely[s0..s1]);
            arena.sw.summaries.clear();
            arena
                .sw
                .summaries
                .extend_from_slice(&scratch.summaries[s0..s1]);
            for (site, (tl, summary)) in arena
                .type_likely
                .iter()
                .zip(&arena.sw.summaries)
                .enumerate()
            {
                let pos = arena.window.start + site as u64;
                rows.push(posterior(
                    tl,
                    summary,
                    d.reference.seq[pos as usize],
                    d.priors.get(pos),
                    &cfg.params,
                ));
            }
        }
        deltas.push(allocs() - before);
    }
    deltas
}

/// Mirror of the pipeline's private batch staging: the concatenated
/// payload and fused-output columns the batched loop reuses per lane.
#[derive(Default)]
struct BatchScratch {
    words: Vec<u32>,
    spans: Vec<(usize, usize)>,
    site_off: Vec<usize>,
    type_likely: Vec<[f64; gsnp::core::model::NUM_GENOTYPES]>,
    summaries: Vec<gsnp::core::model::SiteSummary>,
    sort_scratch: gsnp::sortnet::MultipassScratch,
}

/// Satellite: mega-batching must not buy its launch reduction with heap
/// churn. After warmup, every batched launch group — 4 windows
/// concatenated, uploaded, sorted, and fused-scored per iteration — runs
/// with ZERO allocations, same bar as the per-window loop above.
#[test]
fn steady_state_batched_loop_is_allocation_free() {
    if std::thread::available_parallelism().map_or(1, usize::from) > 1 {
        eprintln!("skipping: requires a serial (single-thread) rayon backend");
        return;
    }

    let mut sc = SynthConfig::tiny(20_260_807);
    sc.num_sites = 8_000;
    let d = Dataset::generate(sc);
    let cfg = GsnpConfig {
        window_size: 1_000,
        variant: KernelVariant::Optimized,
        ..Default::default()
    };
    let batch = 4;

    let dev = Device::new(cfg.device.clone());
    let p_matrix = PMatrix::calibrate(&d.reads, &d.reference, &cfg.params);
    let new_p = NewPMatrix::precompute(&p_matrix);
    let log_table = LogTable::new();
    let tables = DeviceTables::upload(&dev, &p_matrix, &new_p, &log_table);

    let mut reader =
        WindowReader::from_reads(Vec::new(), d.reference.len() as u64, cfg.window_size);
    let mut arenas: Vec<WindowArena> = (0..batch).map(|_| WindowArena::default()).collect();
    let mut scratch = BatchScratch::default();
    let mut rows = Vec::new();

    let warm = run_batched_pass(
        &d,
        &dev,
        &tables,
        &cfg,
        batch,
        &mut reader,
        &mut arenas,
        &mut scratch,
        &mut rows,
    );
    assert_eq!(warm.len(), 2, "8 windows at batch 4 = 2 batches");
    assert!(warm.iter().sum::<u64>() > 0, "warmup must allocate");

    let steady = run_batched_pass(
        &d,
        &dev,
        &tables,
        &cfg,
        batch,
        &mut reader,
        &mut arenas,
        &mut scratch,
        &mut rows,
    );
    assert_eq!(
        steady,
        vec![0u64; 2],
        "steady-state batched launches must not allocate"
    );

    let ledger = dev.ledger();
    assert!(ledger.pool.hits > 0, "pool stats: {:?}", ledger.pool);
}

/// The same zero-allocation bar with a [`TraceRecorder`] attached: the
/// recorder's ring is preallocated and kernel names are interned during
/// warmup, so steady-state *recording* — every kernel span, transfer
/// span, and pool event of every window — adds zero heap allocations.
/// This is the measurable content of "tracing is always-on-safe".
#[test]
fn steady_state_recording_is_allocation_free() {
    if std::thread::available_parallelism().map_or(1, usize::from) > 1 {
        eprintln!("skipping: requires a serial (single-thread) rayon backend");
        return;
    }

    let mut sc = SynthConfig::tiny(20_260_807);
    sc.num_sites = 8_000;
    let d = Dataset::generate(sc);
    let cfg = GsnpConfig {
        window_size: 1_000,
        variant: KernelVariant::Optimized,
        ..Default::default()
    };

    // Ring sized for both passes up front; registration and interning of
    // the fixed track/event names happens here, not per window.
    let rec = std::sync::Arc::new(gsnp::gpu_sim::TraceRecorder::new(1 << 16));
    let dev = Device::new(cfg.device.clone()).with_trace(&rec, 0);
    let p_matrix = PMatrix::calibrate(&d.reads, &d.reference, &cfg.params);
    let new_p = NewPMatrix::precompute(&p_matrix);
    let log_table = LogTable::new();
    let tables = DeviceTables::upload(&dev, &p_matrix, &new_p, &log_table);

    let mut reader =
        WindowReader::from_reads(Vec::new(), d.reference.len() as u64, cfg.window_size);
    let mut arena = WindowArena::default();
    let mut rows = Vec::new();

    run_pass(&d, &dev, &tables, &cfg, &mut reader, &mut arena, &mut rows);
    let events_after_warmup = rec.snapshot().events.len();

    let steady = run_pass(&d, &dev, &tables, &cfg, &mut reader, &mut arena, &mut rows);
    assert_eq!(
        steady,
        vec![0u64; 8],
        "steady-state windows must not allocate while recording"
    );

    // The recorder really was live the whole time: the steady pass added
    // events (same kernels, same names — just more spans in the ring).
    let snap = rec.snapshot();
    assert!(
        snap.events.len() > events_after_warmup,
        "steady pass recorded nothing ({events_after_warmup} events)"
    );
    assert_eq!(snap.dropped, 0, "ring must not have overflowed");
}
