//! The tentpole guarantee of mega-batched launches: at any
//! `launch_batch`, on any input, GSNP's results — the per-window tables
//! AND the compressed result file — are byte-identical to the
//! batch-of-one run, at every `(pipeline_depth, num_devices)` the
//! sharded loop supports. Batching only coalesces launches; it never
//! changes what they compute (§IV-G discipline applied to the batch
//! axis). Alongside identity, the ledger must show the point of the
//! exercise: total kernel launches strictly fall as the batch widens,
//! while the per-site work counters stay exactly fixed.

use proptest::prelude::*;

use gsnp::core::pipeline::{GsnpConfig, GsnpOutput, GsnpPipeline};
use gsnp::gpu_sim::HwCounters;
use gsnp::seqio::soap::AlignedRead;
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn cfg(launch_batch: usize, pipeline_depth: usize, num_devices: usize) -> GsnpConfig {
    GsnpConfig {
        window_size: 700,
        launch_batch,
        pipeline_depth,
        num_devices,
        ..Default::default()
    }
}

fn run(d: &Dataset, reads: &[AlignedRead], c: GsnpConfig) -> GsnpOutput {
    GsnpPipeline::new(c).run(reads, &d.reference, &d.priors)
}

fn dataset(seed: u64, num_sites: u64) -> Dataset {
    let mut sc = SynthConfig::tiny(seed);
    sc.num_sites = num_sites;
    Dataset::generate(sc)
}

/// Sum a run's ledgers into (launches, counters).
fn sum_ledgers(out: &GsnpOutput) -> (u64, HwCounters) {
    let mut launches = 0u64;
    let mut counters = HwCounters::default();
    for led in &out.stats.ledgers {
        launches += led.launches;
        counters += led.counters;
    }
    (launches, counters)
}

/// Batch {1, 3, 8} × depth {1, 4} × devices {1, 4}: every combination is
/// byte-identical to the serial batch-of-one reference, and the summed
/// hardware counters are invariant modulo the per-extra-device table
/// upload.
#[test]
fn batched_grid_is_byte_identical_to_unbatched() {
    let d = dataset(0xBA7C4, 8_000);
    let reference = run(&d, &d.reads, cfg(1, 1, 1));
    assert!(
        reference.stats.windows >= 8,
        "grid test needs several windows"
    );
    let (_, ref_ctr) = sum_ledgers(&reference);

    for launch_batch in [1usize, 3, 8] {
        for pipeline_depth in [1usize, 4] {
            for num_devices in [1usize, 4] {
                let out = run(&d, &d.reads, cfg(launch_batch, pipeline_depth, num_devices));
                let shape = format!("batch {launch_batch} depth {pipeline_depth} x{num_devices}");
                assert_eq!(out.tables, reference.tables, "{shape}: tables diverged");
                assert_eq!(
                    out.compressed, reference.compressed,
                    "{shape}: compressed stream diverged"
                );
                assert_eq!(out.stats.num_sites, reference.stats.num_sites, "{shape}");
                assert_eq!(out.stats.num_obs, reference.stats.num_obs, "{shape}");
                assert_eq!(out.stats.snp_count, reference.stats.snp_count, "{shape}");
                assert_eq!(out.stats.windows, reference.stats.windows, "{shape}");

                // Work invariance. h2d pays one table upload per extra
                // device (the payload bytes themselves are invariant:
                // the same words upload either way), and every
                // per-element counter — random/shared traffic, readback
                // bytes — is exactly fixed. Block-granular bookkeeping
                // (per-block setup instructions, coalesced staging of
                // partially-filled tail blocks) legitimately shrinks a
                // hair as wider batches fill blocks more densely, so
                // those counters get a tight relative bound instead.
                let (_, ctr) = sum_ledgers(&out);
                assert_eq!(
                    ctr.h2d_bytes,
                    ref_ctr.h2d_bytes + (num_devices as u64 - 1) * out.stats.table_bytes,
                    "{shape}: h2d bytes"
                );
                assert_eq!(ctr.d2h_bytes, ref_ctr.d2h_bytes, "{shape}: d2h bytes");
                assert_eq!(ctr.g_load_random, ref_ctr.g_load_random, "{shape}");
                assert_eq!(ctr.g_store_random, ref_ctr.g_store_random, "{shape}");
                assert_eq!(ctr.s_load, ref_ctr.s_load, "{shape}");
                assert_eq!(ctr.s_store, ref_ctr.s_store, "{shape}");
                for (name, a, b) in [
                    ("instructions", ctr.instructions, ref_ctr.instructions),
                    (
                        "g_load_coalesced",
                        ctr.g_load_coalesced,
                        ref_ctr.g_load_coalesced,
                    ),
                    (
                        "g_store_coalesced",
                        ctr.g_store_coalesced,
                        ref_ctr.g_store_coalesced,
                    ),
                ] {
                    let drift = a.abs_diff(b) as f64 / b as f64;
                    assert!(
                        drift < 1e-3,
                        "{shape}: {name} drifted {drift:.2e} ({a} vs {b})"
                    );
                }
            }
        }
    }
}

/// The figure of merit: total kernel launches strictly decrease as the
/// batch widens — each width-B batch replaces B per-window launch chains
/// with one.
#[test]
fn launches_strictly_fall_with_batch_width() {
    let d = dataset(0xFA57, 8_000);
    let mut prev: Option<(usize, u64)> = None;
    for launch_batch in [1usize, 2, 4, 8] {
        let out = run(&d, &d.reads, cfg(launch_batch, 1, 1));
        let (launches, _) = sum_ledgers(&out);
        // The per-kernel tallies must agree with the ledger total.
        let tallied: u64 = out.stats.kernel_launches.iter().map(|t| t.launches).sum();
        assert_eq!(tallied, launches, "tally/ledger divergence");
        if let Some((pb, pl)) = prev {
            assert!(
                launches < pl,
                "batch {launch_batch} ({launches} launches) not below batch {pb} ({pl})"
            );
        }
        prev = Some((launch_batch, launches));
    }
    // 8 windows in one batch must cut launches by at least the ~5x the
    // experiment claims (the whole point of the mega-batch).
    let (l1_total, _) = sum_ledgers(&run(&d, &d.reads, cfg(1, 1, 1)));
    let (_, l8_total) = prev.unwrap();
    assert!(
        l1_total >= 5 * l8_total,
        "batch 8 ({l8_total}) must cut launches >=5x vs batch 1 ({l1_total})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary workloads and shapes: batched output is byte-identical
    /// to the batch-of-one serial reference.
    #[test]
    fn batched_run_is_byte_identical_on_arbitrary_inputs(
        seed in 0u64..1_000_000,
        num_sites in 800u64..4_000,
        window_size in 137usize..1_500,
        launch_batch in 2usize..=8,
        depth_sel in 0usize..3,          // index into {1, 2, 4}
        num_devices in 1usize..=4,
        gpu_output in any::<bool>(),
    ) {
        let mut sc = SynthConfig::tiny(seed);
        sc.num_sites = num_sites;
        let d = Dataset::generate(sc);
        let pipeline_depth = [1usize, 2, 4][depth_sel];

        let c = |launch_batch, pipeline_depth, num_devices| GsnpConfig {
            window_size,
            gpu_output,
            launch_batch,
            pipeline_depth,
            num_devices,
            ..Default::default()
        };
        let reference = run(&d, &d.reads, c(1, 1, 1));
        let batched = run(&d, &d.reads, c(launch_batch, pipeline_depth, num_devices));

        prop_assert_eq!(&batched.tables, &reference.tables);
        prop_assert_eq!(&batched.compressed, &reference.compressed);
        prop_assert_eq!(batched.stats.num_sites, reference.stats.num_sites);
        prop_assert_eq!(batched.stats.num_obs, reference.stats.num_obs);
        prop_assert_eq!(batched.stats.snp_count, reference.stats.snp_count);
    }
}
