//! Contract conformance sweep: the static proof and the dynamic checker
//! must agree on every paper kernel, across grid shapes, launch-batch
//! sizes, and device counts — and seeded-defect kernels must be refuted
//! *before* a single lane executes.
//!
//! Two legs:
//!
//! * **Conformance** (observed ⊆ declared): run the kernel chains on a
//!   device with contracts *and* the sanitizer's conformance mode, and
//!   assert zero escapes (an access outside the declared footprint) and
//!   zero over-wide declarations (a declaration grossly wider than what
//!   ran) — the declarations are tight and honest.
//! * **Refutation**: kernels seeded with one defect per violation class
//!   (out-of-bounds footprint, inter-block write overlap, shared-memory
//!   leak) are rejected by the static analyzer at launch time; an
//!   `AtomicBool` in the body proves no block ever ran.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

use proptest::prelude::*;

use gsnp::compress::gpu::{rledict_gpu, rledict_gpu_batch};
use gsnp::compress::rledict;
use gsnp::core::counting::SparseWindow;
use gsnp::core::likelihood::{
    likelihood_comp_fused_gpu_into, likelihood_comp_gpu, likelihood_sort_gpu, DeviceTables,
    KernelVariant,
};
use gsnp::core::pipeline::{GsnpConfig, GsnpPipeline};
use gsnp::core::tables::{LogTable, NewPMatrix, PMatrix};
use gsnp::core::ModelParams;
use gsnp::gpu_sim::primitives::{binary_search_indices, exclusive_scan, unique_sorted};
use gsnp::gpu_sim::{
    AccessContract, BlockInterval, Device, Footprint, SanitizerConfig, ViolationKind,
};
use gsnp::seqio::synth::{Dataset, SynthConfig};
use gsnp::seqio::window::WindowReader;

fn conformance_device() -> Device {
    Device::m2050()
        .with_sanitizer(SanitizerConfig::all().with_conformance())
        .with_contracts()
}

/// Assert the device saw only proved launches and that every observed
/// access stayed inside its declared footprint.
fn assert_clean(dev: &Device) {
    let report = dev.contract_report();
    let t = report.totals();
    assert!(t.verified > 0, "no contracted launch recorded");
    assert_eq!(t.refuted, 0, "{:?}", report.diagnostics);
    assert_eq!(t.assumed, 0, "uncontracted launch: {:?}", report.per_kernel);
    let counts = dev.sanitizer_report().unwrap().counts;
    assert_eq!(
        counts.conformance_escapes, 0,
        "kernel escaped its declared footprint"
    );
    assert_eq!(
        counts.overwide_declarations, 0,
        "declaration grossly wider than observed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The full pipeline proves every launch across window sizes (grid
    /// shapes), mega-batch sizes, and device counts — and the proof
    /// changes nothing: output stays byte-identical to an unproved run.
    #[test]
    fn pipeline_proves_every_launch_across_shapes(
        seed in 0u64..1_000,
        window in prop_oneof![Just(700usize), Just(1_000), Just(1_777)],
        batch in prop_oneof![Just(1usize), Just(8)],
        devices in prop_oneof![Just(1usize), Just(4)],
    ) {
        let d = Dataset::generate(SynthConfig::tiny(seed));
        let cfg = GsnpConfig {
            window_size: window,
            launch_batch: batch,
            num_devices: devices,
            ..Default::default()
        };
        let plain = GsnpPipeline::new(cfg.clone()).run(&d.reads, &d.reference, &d.priors);
        let proved = GsnpPipeline::new(GsnpConfig { contracts: true, ..cfg })
            .run(&d.reads, &d.reference, &d.priors);
        prop_assert_eq!(&plain.compressed, &proved.compressed);
        let report = &proved.stats.contracts;
        prop_assert!(report.totals().verified > 0);
        prop_assert!(report.all_verified(), "{:?}", report.per_kernel);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every paper kernel, driven directly on a conformance device across
    /// arbitrary window shapes: multipass sort, all four likelihood_comp
    /// variants, the fused counting kernel, and the scan/RLE/DICT
    /// compression chain. Zero escapes, zero over-wide declarations.
    #[test]
    fn kernels_stay_inside_declared_footprints(
        seed in 0u64..1_000,
        window in 200usize..900,
    ) {
        let mut synth = SynthConfig::tiny(seed);
        synth.num_sites = 2_000;
        let d = Dataset::generate(synth);
        let p = PMatrix::calibrate(&d.reads, &d.reference, &ModelParams::default());
        let np = NewPMatrix::precompute(&p);
        let lt = LogTable::new();
        let mut wr = WindowReader::new(
            d.reads.iter().cloned().map(Ok),
            d.config.num_sites,
            window,
        );
        let w = wr.next_window().unwrap().unwrap();
        let sw = SparseWindow::count(&w); // unsorted: the device sorts

        let dev = conformance_device();
        let tables = DeviceTables::upload(&dev, &p, &np, &lt);
        let words = dev.upload(&sw.words);
        likelihood_sort_gpu(&dev, &words, &sw.spans);
        for variant in KernelVariant::ALL {
            likelihood_comp_gpu(&dev, variant, &words, &sw.spans, d.config.read_len, &tables);
        }
        let mut out = Vec::new();
        let mut summaries = Vec::new();
        likelihood_comp_fused_gpu_into(
            &dev,
            KernelVariant::Optimized,
            &words,
            &sw.spans,
            d.config.read_len,
            &tables,
            &mut out,
            &mut summaries,
        );

        // Compression chain over a window-derived column (solo + batch).
        let column: Vec<u32> = sw.spans.iter().map(|&(_, len)| len as u32).collect();
        let (bytes, _) = rledict_gpu(&dev, &column);
        prop_assert_eq!(bytes, rledict::encode_to_vec(&column));
        let halves = [&column[..column.len() / 2], &column[column.len() / 2..]];
        rledict_gpu_batch(&dev, &halves);
        // And the raw primitives the chain is built from.
        exclusive_scan(&dev, &dev.upload(&column));
        let sorted = {
            let mut s = column.clone();
            s.sort_unstable();
            s
        };
        let sorted_buf = dev.upload(&sorted);
        let (dict, _) = unique_sorted(&dev, &sorted_buf);
        let dict_buf = dev.upload(&dict);
        binary_search_indices(&dev, &dict_buf, &dev.upload(&column));

        assert_clean(&dev);
    }
}

// ---------------------------------------------------------------------
// Seeded defects: one kernel per violation class, refuted statically.
// ---------------------------------------------------------------------

/// Launch a contracted kernel expected to be refuted; assert the panic
/// message carries the structured diagnostic and the body never ran.
fn assert_refuted_before_execution(
    dev: &Device,
    name: &str,
    grid: usize,
    contract: impl FnOnce() -> AccessContract,
    expected_kind: ViolationKind,
) {
    let ran = AtomicBool::new(false);
    let result = catch_unwind(AssertUnwindSafe(|| {
        dev.launch_contracted(name, grid, contract, |_ctx| {
            ran.store(true, Ordering::SeqCst);
        })
    }));
    let payload = result.expect_err("defective contract must refuse to launch");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("contract refuted for kernel"),
        "unexpected panic: {msg}"
    );
    assert!(
        !ran.load(Ordering::SeqCst),
        "a lane executed despite refutation"
    );
    let report = dev.contract_report();
    assert_eq!(report.per_kernel[name].refuted, 1);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.kernel == name && d.kind == expected_kind),
        "missing {expected_kind:?} diagnostic: {:?}",
        report.diagnostics
    );
}

#[test]
fn oob_footprint_is_refuted_statically() {
    let dev = Device::m2050().with_contracts();
    let buf = dev.alloc::<u32>(50);
    assert_refuted_before_execution(
        &dev,
        "seeded_oob",
        2,
        || AccessContract::new().write(&buf, Footprint::tiled(64, 128)),
        ViolationKind::OutOfBounds,
    );
}

#[test]
fn inter_block_write_overlap_is_refuted_statically() {
    let dev = Device::m2050().with_contracts();
    let buf = dev.alloc::<u32>(128);
    assert_refuted_before_execution(
        &dev,
        "seeded_overlap",
        2,
        || {
            AccessContract::new().write(
                &buf,
                Footprint::per_block(vec![
                    BlockInterval {
                        block: 0,
                        lo: 0,
                        hi: 80,
                    },
                    BlockInterval {
                        block: 1,
                        lo: 64,
                        hi: 128,
                    },
                ]),
            )
        },
        ViolationKind::InterBlockOverlap,
    );
    // The witness names the colliding block pair.
    let diag = &dev.contract_report().diagnostics[0];
    assert_eq!(diag.witness, Some((0, 1)));
}

#[test]
fn shared_leak_is_refuted_statically() {
    let dev = Device::m2050().with_contracts();
    assert_refuted_before_execution(
        &dev,
        "seeded_leak",
        1,
        || AccessContract::new().shared_leaked::<f64>(16),
        ViolationKind::SharedLeak,
    );
}

#[test]
fn shared_overflow_is_refuted_statically() {
    let dev = Device::m2050().with_contracts();
    assert_refuted_before_execution(
        &dev,
        "seeded_overflow",
        1,
        // 7000 f64 = 56 KB > the M2050's 48 KB per block.
        || AccessContract::new().shared::<f64>(7_000),
        ViolationKind::SharedOverflow,
    );
}
