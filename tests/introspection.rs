//! The live-introspection layer's contract, end to end:
//!
//! 1. **Histograms are mergeable and honest.** Log-bucketed merge is
//!    associative and order-free (property test), so per-lane histograms
//!    can fold in any order without changing the published quantiles —
//!    and every reported quantile brackets the true order statistic
//!    within the bucket resolution bound `[q, 2q]`.
//! 2. **The journal reconstructs the run.** A 4-device cohort run
//!    journaled exactly as the CLI does (`run_start` manifest …
//!    lifecycle events … `run_end` digests) passes [`journal::validate`]
//!    and `gsnp report`'s renderer reproduces samples, devices, and
//!    latency digests from the file alone.
//! 3. **The stats endpoint is live.** `/health`, `/progress`, and
//!    `/metrics` answer over real TCP while the window loop executes,
//!    and the terminal snapshot agrees with the pipeline's own stats.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use gsnp::core::cohort::{CohortCallConfig, CohortPipeline, SampleReads};
use gsnp::core::journal::{self, Journal};
use gsnp::core::{GsnpConfig, GsnpPipeline, ProgressTracker, StatsServer};
use gsnp::gpu_sim::{parse_json, Histogram, Json};
use gsnp::seqio::synth::{Cohort, CohortConfig, Dataset, SynthConfig};

/// Everything merge order may legitimately NOT change: the populated
/// cumulative buckets (bit-exact — counts are integer adds), the total
/// count, and the max. The float `sum` is compared separately with a
/// tolerance because addition order varies.
fn fingerprint(h: &Histogram) -> (Vec<(u64, u64)>, u64, u64) {
    let buckets: Vec<(u64, u64)> = h
        .cumulative_buckets()
        .map(|(upper, c)| (upper.to_bits(), c))
        .collect();
    (buckets, h.count(), h.max().to_bits())
}

fn build(values: &[f64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket-wise merge is associative and equals single-pass recording,
    /// so lane-local histograms may fold in any grouping.
    #[test]
    fn histogram_merge_is_associative_and_order_free(
        values in prop::collection::vec(1e-9f64..10.0, 3..120),
        cut_a in 0usize..1000,
        cut_b in 0usize..1000,
    ) {
        let (i, j) = (cut_a % values.len(), cut_b % values.len());
        let (lo, hi) = (i.min(j), i.max(j));
        let a = build(&values[..lo]);
        let b = build(&values[lo..hi]);
        let c = build(&values[hi..]);

        let mut left = a.clone();   // (a ⊕ b) ⊕ c
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();     // a ⊕ (b ⊕ c)
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        let whole = build(&values); // single-pass ground truth

        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
        prop_assert_eq!(fingerprint(&left), fingerprint(&whole));
        prop_assert!((left.sum() - whole.sum()).abs() <= 1e-9 * values.len() as f64);
        prop_assert_eq!(left.quantile(0.5).to_bits(), whole.quantile(0.5).to_bits());
        prop_assert_eq!(left.quantile(0.99).to_bits(), whole.quantile(0.99).to_bits());
    }

    /// Every quantile estimate brackets the true order statistic: the
    /// powers-of-two bucket ladder guarantees `truth <= est <= 2 * truth`
    /// for observations at or above the 1 ns base resolution.
    #[test]
    fn quantile_brackets_the_true_order_statistic(
        values in prop::collection::vec(1e-9f64..500.0, 1..200),
        p in 0.01f64..1.0,
    ) {
        let h = build(&values);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(p);
        prop_assert!(
            est >= truth && est <= truth * 2.0,
            "p={p} est={est} truth={truth} n={}",
            sorted.len()
        );
    }
}

fn tmppath(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gsnp-introspection-{name}-{}", std::process::id()));
    p
}

fn event_kind(ev: &Json) -> Option<&str> {
    ev.get("event").and_then(Json::as_str)
}

/// Journal round trip on a 4-device cohort run: emit `run_start` and
/// `run_end` exactly as the CLI does around a real [`CohortPipeline`]
/// run, then reconstruct the whole run from the file alone.
#[test]
fn journal_round_trips_through_report_on_a_four_device_cohort() {
    let mut base_cfg = SynthConfig::tiny(20_260_809);
    base_cfg.num_sites = 6_000;
    base_cfg.depth = 3.0;
    let c = Cohort::generate(CohortConfig {
        base: base_cfg,
        num_samples: 3,
        shared_rate: 0.6,
    });

    let path = tmppath("cohort.jsonl");
    let journal = Arc::new(Journal::create(&path).expect("create journal"));
    let tracker = Arc::new(ProgressTracker::new());

    journal.event(
        "run_start",
        &format!(
            "\"schema\":{},\"version\":\"{}\",\"cmd\":\"call --cohort\",\
             \"config\":{{\"window_size\":1500,\"num_devices\":4}},\
             \"inputs\":[{{\"path\":\"synthetic\",\"bytes\":5,\"fnv64\":\"{:016x}\"}}]",
            journal::SCHEMA_VERSION,
            env!("CARGO_PKG_VERSION"),
            journal::fnv64(b"smoke"),
        ),
    );

    let inputs: Vec<SampleReads<'_>> = c
        .samples
        .iter()
        .map(|s| SampleReads {
            name: &s.name,
            reads: &s.reads,
        })
        .collect();
    let base = GsnpConfig {
        window_size: 1_500,
        num_devices: 4,
        pipeline_depth: 2,
        progress: Some(Arc::clone(&tracker)),
        journal: Some(Arc::clone(&journal)),
        ..Default::default()
    };
    let out = CohortPipeline::new(CohortCallConfig {
        base,
        ..Default::default()
    })
    .run(&inputs, &c.reference, &c.priors);

    tracker.finish();
    let wall = tracker.elapsed_seconds();
    let hists: Vec<String> = out
        .stats
        .hists
        .digest_rows()
        .iter()
        .map(|(name, d)| journal::digest_json(name, d))
        .collect();
    journal.event(
        "run_end",
        &format!(
            "\"windows\":{},\"sites\":{},\"snp_calls\":{},\"samples\":{},\
             \"wall_seconds\":{wall:.6},\"sites_per_second\":{:.3},\"hists\":[{}]",
            out.stats.windows,
            out.stats.num_sites,
            out.stats.snp_count,
            out.stats.samples,
            out.stats.num_sites as f64 / wall.max(1e-9),
            hists.join(","),
        ),
    );
    assert!(!journal.take_error(), "journal write failed");
    drop(journal);

    let text = std::fs::read_to_string(&path).expect("read journal back");
    std::fs::remove_file(&path).ok();

    // Invariants hold, and the cohort's full lifecycle made it to disk.
    let s = journal::validate(&text).expect("journal invariants hold");
    let kinds = |k: &str| s.events.iter().filter(|e| event_kind(e) == Some(k)).count();
    assert!(kinds("batch") >= 1, "no batch events journaled");
    assert_eq!(kinds("stage"), 4, "one stage event per pipeline stage");
    assert_eq!(kinds("lane"), 4, "one lane event per device");
    assert_eq!(kinds("device"), 4, "one device event per ledger");
    assert_eq!(kinds("sample"), 3, "one sample event per cohort sample");
    assert_eq!(kinds("gates"), 1);

    // The report reconstructs the run from the journal alone.
    let report = journal::render_report(&text).expect("report renders");
    for smp in &c.samples {
        assert!(
            report.contains(&smp.name),
            "sample {} missing:\n{report}",
            smp.name
        );
    }
    assert!(report.contains("cohort: 3 samples"), "{report}");
    assert!(report.contains("device d3:"), "{report}");
    assert!(
        report.contains("\nlatency "),
        "digest table missing:\n{report}"
    );
    assert!(report.contains("journal invariants: ok"), "{report}");
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect stats endpoint");
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

fn body_of(response: &str) -> &str {
    response
        .split("\r\n\r\n")
        .nth(1)
        .expect("response has a body")
        .trim()
}

/// `/health`, `/progress`, and `/metrics` answer over real TCP while the
/// window loop executes, and the terminal snapshot matches the
/// pipeline's own stats.
#[test]
fn live_endpoints_answer_while_a_run_executes() {
    let mut sc = SynthConfig::tiny(20_260_811);
    sc.num_sites = 6_000;
    sc.depth = 3.0;
    let d = Dataset::generate(sc);

    let tracker = Arc::new(ProgressTracker::new());
    let server = StatsServer::start("127.0.0.1:0", Arc::clone(&tracker)).expect("bind port 0");
    let addr = server.addr();

    // Liveness before the first window.
    let health = http_get(addr, "/health");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    let cfg = GsnpConfig {
        window_size: 300,
        num_devices: 2,
        pipeline_depth: 2,
        progress: Some(Arc::clone(&tracker)),
        ..Default::default()
    };
    let run =
        std::thread::spawn(move || GsnpPipeline::new(cfg).run(&d.reads, &d.reference, &d.priors));

    // Poll /progress until the run completes; every response — mid-run
    // or terminal — must be a 200 carrying parseable JSON.
    let mut polls = 0u32;
    while !run.is_finished() {
        let resp = http_get(addr, "/progress");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        parse_json(body_of(&resp)).expect("mid-run progress is valid JSON");
        polls += 1;
        assert!(polls < 60_000, "pipeline never finished");
        std::thread::sleep(Duration::from_millis(1));
    }
    let out = run.join().expect("pipeline run");
    tracker.finish();

    let progress = http_get(addr, "/progress");
    let v = parse_json(body_of(&progress)).expect("terminal progress parses");
    assert_eq!(
        v.get("windows_done").and_then(Json::as_num),
        Some(out.stats.windows as f64),
        "{progress}"
    );
    assert!(body_of(&progress).contains("\"done\":true"), "{progress}");

    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    for needle in [
        "# TYPE gsnp_window_seconds histogram",
        "gsnp_window_seconds_bucket",
        "le=\"+Inf\"",
        "gsnp_progress_windows_done_total",
        "gsnp_lane_windows_total{device=\"0\"}",
        "gsnp_build_info{",
        "gsnp_run_active 0",
    ] {
        assert!(
            metrics.contains(needle),
            "missing {needle:?} in:\n{metrics}"
        );
    }

    let health = http_get(addr, "/health");
    assert!(health.contains("\"done\":true"), "{health}");
    server.shutdown();
}
