//! Failure injection: malformed files, corrupted streams, and boundary
//! abuse must produce errors, never panics or silent corruption.

use std::io::Cursor;

use gsnp::compress::column::{compress_table, decompress_table, WindowStream};
use gsnp::compress::{input_codec, lz, CodecError};
use gsnp::seqio::fasta::Reference;
use gsnp::seqio::prior::PriorMap;
use gsnp::seqio::result::{SnpRow, SnpTable};
use gsnp::seqio::soap::{AlignedRead, AlignmentReader};
use gsnp::seqio::synth::{Dataset, SynthConfig};
use gsnp::seqio::SeqIoError;

fn sample_table() -> SnpTable {
    SnpTable::new(
        "chrF",
        100,
        (0..500)
            .map(|i| SnpRow {
                ref_base: (i % 4) as u8,
                genotype: b"ACGT"[i % 4],
                quality: (i % 80) as u8,
                best_base: (i % 4) as u8,
                avg_qual_best: 35,
                count_uniq_best: 9,
                count_all_best: 9,
                depth: 9,
                rank_sum_milli: 1000,
                copy_milli: 900,
                ..SnpRow::default()
            })
            .collect(),
    )
}

#[test]
fn corrupted_compressed_windows_error_not_panic() {
    let t = sample_table();
    let bytes = compress_table(&t);
    // Flip every byte position one at a time; decode must never panic and
    // must either error or produce *some* table (bit flips in payload data
    // can decode to different-but-valid rows; structural fields error).
    for i in 0..bytes.len() {
        let mut dup = bytes.clone();
        dup[i] ^= 0xA5;
        let _ = decompress_table(&dup);
    }
    // Truncation at every length must error or be caught structurally.
    for cut in 0..bytes.len() {
        assert!(
            decompress_table(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes decoded successfully"
        );
    }
}

#[test]
fn window_stream_with_garbage_length_prefix() {
    let mut file = Vec::new();
    file.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
    file.extend_from_slice(b"junk");
    let results: Vec<_> = WindowStream::new(&file).collect();
    assert!(!results.is_empty());
    assert!(results.iter().any(Result::is_err));
}

#[test]
fn lz_rejects_malformed_streams() {
    let good = lz::compress(b"the quick brown fox jumps over the lazy dog".as_slice());
    // Magic corruption.
    let mut bad = good.clone();
    bad[2] ^= 0xFF;
    assert!(matches!(lz::decompress(&bad), Err(CodecError::Corrupt(_))));
    // Truncations.
    for cut in [0usize, 3, 11, good.len() - 1] {
        assert!(lz::decompress(&good[..cut]).is_err());
    }
    // Random garbage.
    assert!(lz::decompress(&[0xAB; 64]).is_err());
}

#[test]
fn input_codec_rejects_corruption() {
    let d = Dataset::generate(SynthConfig::tiny(91));
    let bytes = input_codec::compress_reads("x", &d.reads);
    for cut in [0usize, 4, bytes.len() / 3, bytes.len() - 1] {
        assert!(input_codec::decompress_reads(&bytes[..cut]).is_err());
    }
    let mut bad = bytes.clone();
    bad[0] = b'?';
    assert!(input_codec::decompress_reads(&bad).is_err());
}

#[test]
fn alignment_parser_rejects_malformed_lines() {
    let cases: &[&str] = &[
        "only\tthree\tfields",
        "id\tACGT\t5555\tx\t4\t+\tchr\t10", // nhits not a number
        "id\tACGT\t5555\t1\t4\t?\tchr\t10", // bad strand
        "id\tACGU\t5555\t1\t4\t+\tchr\t10", // bad base
        "id\tACGT\t555\t1\t4\t+\tchr\t10",  // qual length mismatch
        "id\tACGT\t5555\t1\t4\t+\tchr\t0",  // 1-based position violated
        "id\tACGT\t5555\t1\t4\t+\tchr\tnotnum", // bad position
    ];
    for line in cases {
        assert!(
            AlignedRead::parse_line(line, 1).is_err(),
            "accepted malformed line {line:?}"
        );
    }
}

#[test]
fn alignment_reader_rejects_unsorted_files() {
    let text = "a\tAC\t55\t1\t2\t+\tc\t50\nb\tAC\t55\t1\t2\t+\tc\t10\n";
    let mut reader = AlignmentReader::new(Cursor::new(text));
    assert!(reader.next_read().unwrap().is_some());
    let err = reader.next_read().unwrap_err();
    assert!(matches!(err, SeqIoError::Invariant(_)));
}

#[test]
fn fasta_and_prior_parsers_reject_malformed_input() {
    assert!(Reference::read_fasta(Cursor::new("ACGT")).is_err());
    assert!(Reference::read_fasta(Cursor::new(">x\nAC!T")).is_err());
    assert!(PriorMap::read(Cursor::new("chr\tnot-enough")).is_err());
    assert!(PriorMap::read(Cursor::new("c\t1\tA\t0.9\t0.9\t0.0\t0.0\n")).is_err()); // sum > 1
    assert!(PriorMap::read(Cursor::new("c\t0\tA\t1.0\t0\t0\t0\n")).is_err()); // 0-based pos
}

#[test]
fn result_text_parser_rejects_structural_damage() {
    let t = sample_table();
    let mut text = Vec::new();
    t.write_text(&mut text).unwrap();
    let s = String::from_utf8(text).unwrap();

    // Drop a column from one line.
    let mut lines: Vec<String> = s.lines().map(String::from).collect();
    let cut = lines[3].rsplit_once('\t').unwrap().0.to_string();
    lines[3] = cut;
    let broken = lines.join("\n");
    assert!(SnpTable::read_text(Cursor::new(broken)).is_err());

    // Skip a position.
    let skipped: String = s
        .lines()
        .enumerate()
        .filter(|(i, _)| *i != 7)
        .map(|(_, l)| format!("{l}\n"))
        .collect();
    assert!(SnpTable::read_text(Cursor::new(skipped)).is_err());
}

#[test]
fn quality_above_six_bits_rejected_at_parse() {
    // Packing would silently wrap a 7-bit quality; the parser must refuse.
    let line = format!("r\tA\t{}\t1\t1\t+\tc\t5", char::from(33 + 64));
    assert!(AlignedRead::parse_line(&line, 1).is_err());
}
