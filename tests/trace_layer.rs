//! The tracing layer's contract, end to end:
//!
//! 1. **Observation is free and invisible.** Running the pipeline with a
//!    [`TraceRecorder`] attached leaves every output byte-identical —
//!    result tables, the compressed file, and the device hardware
//!    counters — at every `(pipeline_depth, num_devices)` (property
//!    test). Tracing must never perturb what it observes.
//! 2. **Timelines are well-formed.** Within every device-clock track,
//!    spans are monotonic and non-overlapping (the simulated clock
//!    cursor serializes them like a single CUDA stream); host pipeline
//!    tracks are monotonic per track.
//! 3. **The exporter speaks Chrome trace-event.** A golden-file test
//!    pins the JSON schema; the real exported trace of a sharded run
//!    passes the same validator the CLI and CI use.
//! 4. **The trace reconciles with the stats.** Per-lane busy/stall
//!    totals re-derived from spans match [`OverlapStats`] (the
//!    `verify_overlap_consistency` assertion, here exercised through the
//!    public API on a real 4-device run).

use std::sync::Arc;

use proptest::prelude::*;

use gsnp::core::{verify_overlap_consistency, GsnpConfig, GsnpPipeline};
use gsnp::gpu_sim::{
    validate_chrome_json, EventKind, SpanArgs, TraceRecorder, TraceSnapshot, TrackKind,
};
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn dataset() -> Dataset {
    let mut sc = SynthConfig::tiny(20_260_807);
    sc.num_sites = 6_000;
    sc.depth = 3.0;
    Dataset::generate(sc)
}

fn run(d: &Dataset, devices: usize, depth: usize, trace: Option<Arc<TraceRecorder>>) -> RunOut {
    let cfg = GsnpConfig {
        window_size: 1_500,
        num_devices: devices,
        pipeline_depth: depth,
        trace,
        ..Default::default()
    };
    let out = GsnpPipeline::new(cfg).run(&d.reads, &d.reference, &d.priors);
    RunOut {
        compressed: out.compressed,
        rows: out
            .tables
            .iter()
            .flat_map(|t| t.rows.iter().map(|r| format!("{r:?}")))
            .collect(),
        counters: {
            let mut acc = gsnp::gpu_sim::HwCounters::default();
            for l in &out.stats.ledgers {
                acc += l.counters;
            }
            format!("{acc:?}")
        },
        overlap: out.stats.overlap,
    }
}

struct RunOut {
    compressed: Vec<u8>,
    rows: Vec<String>,
    counters: String,
    overlap: gsnp::core::OverlapStats,
}

/// Spans on one track, ordered as recorded.
fn track_spans(snap: &TraceSnapshot, track: u32) -> Vec<(f64, f64)> {
    snap.events
        .iter()
        .filter(|e| e.track.0 == track)
        .filter_map(|e| match e.kind {
            EventKind::Span { dur, .. } => Some((e.ts, dur)),
            _ => None,
        })
        .collect()
}

#[test]
fn device_track_spans_are_monotonic_and_non_overlapping() {
    let d = dataset();
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    // Quarter-size windows (20 instead of the 4 the other tests use):
    // this test asserts *both* devices traced kernels, and with only two
    // windows homed per device a fast worker can legitimately steal its
    // sibling's entire queue before the sibling first polls.
    let cfg = GsnpConfig {
        window_size: 300,
        num_devices: 2,
        pipeline_depth: 2,
        trace: Some(Arc::clone(&rec)),
        ..Default::default()
    };
    GsnpPipeline::new(cfg).run(&d.reads, &d.reference, &d.priors);
    let snap = rec.snapshot();
    assert_eq!(snap.dropped, 0, "ring sized for the whole run");

    let mut device_tracks = 0;
    for (i, tr) in snap.tracks.iter().enumerate() {
        if !tr.process.starts_with("device") || tr.kind != TrackKind::Spans {
            continue;
        }
        // The per-device clock cursor hands every kernel and transfer an
        // exclusive interval of the simulated timeline, so sorted by
        // start time a device track's spans never overlap. (Record order
        // is not timestamp order: the posterior stage charges readbacks
        // on a device concurrently with its lane worker's launches.)
        let mut spans = track_spans(&snap, i as u32);
        if tr.thread == "kernels" {
            assert!(
                !spans.is_empty(),
                "no kernels on {}/{}",
                tr.process,
                tr.thread
            );
            device_tracks += 1;
        }
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cursor = f64::NEG_INFINITY;
        for (k, &(ts, dur)) in spans.iter().enumerate() {
            assert!(dur >= 0.0);
            assert!(
                ts >= cursor - 1e-12,
                "{}/{} span {k} at {ts} overlaps previous span ending {cursor}",
                tr.process,
                tr.thread
            );
            cursor = ts + dur;
        }
    }
    assert_eq!(device_tracks, 2, "one kernel track per device");
}

#[test]
fn pipeline_tracks_cover_every_stage_and_lane() {
    let d = dataset();
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    run(&d, 4, 2, Some(Arc::clone(&rec)));
    let snap = rec.snapshot();

    let threads: Vec<&str> = snap
        .tracks
        .iter()
        .filter(|t| t.process == "pipeline")
        .map(|t| t.thread.as_str())
        .collect();
    for expected in [
        "read_site",
        "device lane 0",
        "device lane 1",
        "device lane 2",
        "device lane 3",
        "posterior",
        "output",
    ] {
        assert!(threads.contains(&expected), "missing track {expected:?}");
    }
    // Host-clock tracks are monotonic by start time per track (spans on
    // one stage thread are recorded in execution order).
    for (i, tr) in snap.tracks.iter().enumerate() {
        if tr.process != "pipeline" {
            continue;
        }
        let spans = track_spans(&snap, i as u32);
        for pair in spans.windows(2) {
            assert!(
                pair[1].0 >= pair[0].0,
                "{}/{} spans out of order",
                tr.process,
                tr.thread
            );
        }
    }
}

#[test]
fn four_device_trace_reconciles_with_overlap_stats() {
    let d = dataset();
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    let out = run(&d, 4, 3, Some(Arc::clone(&rec)));
    let snap = rec.snapshot();
    assert_eq!(snap.dropped, 0);
    verify_overlap_consistency(&snap, &out.overlap).expect("trace must reconcile with stats");

    // Steal markers only ever appear on lane tracks, and their count
    // matches the stats (zero steals is legitimate on a fast run, but
    // the window totals must still agree).
    let total_windows: u64 = out.overlap.devices.iter().map(|l| l.windows).sum();
    assert_eq!(total_windows, 4, "6000 sites / 1500 = 4 windows");
}

/// Golden-file schema pin for the Chrome exporter: a hand-built recorder
/// with fixed timestamps must serialize to exactly this JSON. Any change
/// to the event schema (field order included) is a deliberate,
/// test-visible decision — Perfetto compatibility rides on it.
#[test]
fn chrome_export_matches_golden_file() {
    let rec = TraceRecorder::new(16);
    let kernels = rec.register_track("device0", "kernels", TrackKind::Spans);
    let lane = rec.register_track("pipeline", "device lane 0", TrackKind::Spans);
    let pool = rec.register_track("device0", "pool bytes", TrackKind::Counter);
    let n_kernel = rec.intern("counting");
    let n_window = rec.intern("window");
    let n_steal = rec.intern("steal");
    let n_bytes = rec.intern("pool_outstanding_bytes");

    rec.span(
        kernels,
        n_kernel,
        0.001,
        0.0005,
        SpanArgs::Xfer { bytes: 64 },
    );
    rec.span(lane, n_window, 0.002, 0.25, SpanArgs::Window { index: 7 });
    rec.instant(lane, n_steal, 0.1);
    rec.counter(pool, n_bytes, 0.25, 4096.0);

    let golden = concat!(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n",
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"device0\"}},\n",
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"kernels\"}},\n",
        "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"pipeline\"}},\n",
        "{\"ph\":\"M\",\"pid\":2,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"device lane 0\"}},\n",
        "{\"ph\":\"M\",\"pid\":1,\"tid\":3,\"name\":\"thread_name\",\"args\":{\"name\":\"pool bytes\"}},\n",
        "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1000,\"dur\":500,\"name\":\"counting\",\"args\":{\"bytes\":64}},\n",
        "{\"ph\":\"X\",\"pid\":2,\"tid\":2,\"ts\":2000,\"dur\":250000,\"name\":\"window\",\"args\":{\"window\":7}},\n",
        "{\"ph\":\"i\",\"pid\":2,\"tid\":2,\"ts\":100000,\"s\":\"t\",\"name\":\"steal\"},\n",
        "{\"ph\":\"C\",\"pid\":1,\"tid\":3,\"ts\":250000,\"name\":\"pool_outstanding_bytes\",\"args\":{\"value\":4096}}\n",
        "]}"
    );
    let json = rec.snapshot().to_chrome_json();
    assert_eq!(json, golden);
    validate_chrome_json(&json).expect("golden trace validates");
}

#[test]
fn real_sharded_export_passes_the_validator() {
    let d = dataset();
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    run(&d, 2, 2, Some(Arc::clone(&rec)));
    let json = rec.snapshot().to_chrome_json();
    let n = validate_chrome_json(&json).expect("exported trace validates");
    assert!(n > 50, "expected a substantial event stream, got {n}");
}

/// Introspection is a pure observer too: a run with the progress
/// tracker, the run journal, AND the trace recorder all attached leaves
/// every output byte identical to a bare run.
#[test]
fn introspection_on_outputs_are_byte_identical() {
    let d = dataset();
    let plain = run(&d, 4, 2, None);

    let mut path = std::env::temp_dir();
    path.push(format!(
        "gsnp-trace-introspection-{}.jsonl",
        std::process::id()
    ));
    let tracker = Arc::new(gsnp::core::ProgressTracker::new());
    let journal = Arc::new(gsnp::core::Journal::create(&path).expect("create journal"));
    let rec = Arc::new(TraceRecorder::new(1 << 16));
    let cfg = GsnpConfig {
        window_size: 1_500,
        num_devices: 4,
        pipeline_depth: 2,
        trace: Some(Arc::clone(&rec)),
        progress: Some(Arc::clone(&tracker)),
        journal: Some(journal),
        ..Default::default()
    };
    let out = GsnpPipeline::new(cfg).run(&d.reads, &d.reference, &d.priors);
    std::fs::remove_file(&path).ok();

    assert_eq!(plain.compressed, out.compressed, "compressed bytes differ");
    let rows: Vec<String> = out
        .tables
        .iter()
        .flat_map(|t| t.rows.iter().map(|r| format!("{r:?}")))
        .collect();
    assert_eq!(plain.rows, rows, "result rows differ");
    // And the observers really observed: the tracker saw every window,
    // and the latency histograms are populated.
    assert_eq!(
        tracker.progress().windows_done,
        4,
        "6000 sites / 1500 = 4 windows"
    );
    assert!(!tracker.latency().window.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tracing is a pure observer: attaching a recorder changes no output
    /// byte and no hardware counter, at any pipeline shape.
    #[test]
    fn tracing_on_off_outputs_are_byte_identical(
        devices in 1usize..4,
        depth in 1usize..4,
    ) {
        let d = dataset();
        let plain = run(&d, devices, depth, None);
        let rec = Arc::new(TraceRecorder::new(1 << 16));
        let traced = run(&d, devices, depth, Some(Arc::clone(&rec)));

        prop_assert_eq!(&plain.compressed, &traced.compressed, "compressed bytes differ");
        prop_assert_eq!(&plain.rows, &traced.rows, "result rows differ");
        prop_assert_eq!(&plain.counters, &traced.counters, "hw counters differ");
        // And the traced run really did record something.
        prop_assert!(!rec.snapshot().events.is_empty());
    }
}
