//! The tentpole guarantee of pluggable compute backends: whichever
//! executor runs the kernels — the instrumented simulator, the native
//! rayon host executor, or the per-launch adaptive dispatcher — GSNP's
//! results are byte-identical: the per-window tables AND the compressed
//! result file, at every `(launch_batch, pipeline_depth, num_devices)`
//! combination the window loop supports. Backends only change *how* a
//! launch executes, never what it computes (§IV-G discipline applied to
//! the execution axis). Alongside identity, the ledger's backend tallies
//! must show the point of the exercise: a `Native` run executes every
//! launch natively, an `Auto` run records a per-launch decision split.

use gsnp::core::pipeline::{GsnpConfig, GsnpOutput, GsnpPipeline};
use gsnp::gpu_sim::{BackendChoice, BackendTallies};
use gsnp::seqio::soap::AlignedRead;
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn cfg(
    backend: BackendChoice,
    launch_batch: usize,
    pipeline_depth: usize,
    num_devices: usize,
) -> GsnpConfig {
    GsnpConfig {
        window_size: 700,
        backend,
        launch_batch,
        pipeline_depth,
        num_devices,
        ..Default::default()
    }
}

fn run(d: &Dataset, reads: &[AlignedRead], c: GsnpConfig) -> GsnpOutput {
    GsnpPipeline::new(c).run(reads, &d.reference, &d.priors)
}

fn dataset(seed: u64, num_sites: u64) -> Dataset {
    let mut sc = SynthConfig::tiny(seed);
    sc.num_sites = num_sites;
    Dataset::generate(sc)
}

/// Sum a run's per-device backend tallies.
fn backend_tallies(out: &GsnpOutput) -> BackendTallies {
    let mut t = BackendTallies::default();
    for led in &out.stats.ledgers {
        t.sum(&led.backend);
    }
    t
}

/// Native × batch {1, 8} × depth {1, 4} × devices {1, 4}: every
/// combination is byte-identical to the serial simulator reference, and
/// every launch of every native run executed on the native backend.
#[test]
fn native_grid_is_byte_identical_to_sim() {
    let d = dataset(0xBACE, 8_000);
    let reference = run(&d, &d.reads, cfg(BackendChoice::Sim, 1, 1, 1));
    assert!(
        reference.stats.windows >= 8,
        "grid test needs several windows"
    );
    let ref_tallies = backend_tallies(&reference);
    assert_eq!(ref_tallies.native, 0, "sim run must not launch natively");
    assert!(ref_tallies.sim > 0);

    for launch_batch in [1usize, 8] {
        for pipeline_depth in [1usize, 4] {
            for num_devices in [1usize, 4] {
                let out = run(
                    &d,
                    &d.reads,
                    cfg(
                        BackendChoice::Native,
                        launch_batch,
                        pipeline_depth,
                        num_devices,
                    ),
                );
                let shape =
                    format!("native batch {launch_batch} depth {pipeline_depth} x{num_devices}");
                assert_eq!(out.tables, reference.tables, "{shape}: tables diverged");
                assert_eq!(
                    out.compressed, reference.compressed,
                    "{shape}: compressed stream diverged"
                );
                let t = backend_tallies(&out);
                assert_eq!(t.sim, 0, "{shape}: no launch may hit the simulator");
                assert!(t.native > 0, "{shape}: native launches must be tallied");
                assert_eq!(
                    t.auto_sim + t.auto_native,
                    0,
                    "{shape}: a pinned backend records no auto decisions"
                );
            }
        }
    }
}

/// The adaptive dispatcher routes launch-by-launch — small grids to the
/// native executor, device-sized grids to the modelled GPU — and the
/// resulting mixed stream is still byte-identical to both pinned runs.
#[test]
fn auto_mixed_stream_is_byte_identical() {
    let d = dataset(0xD15C, 6_000);
    let sim = run(&d, &d.reads, cfg(BackendChoice::Sim, 1, 2, 1));
    let auto = run(&d, &d.reads, cfg(BackendChoice::Auto, 1, 2, 1));
    assert_eq!(auto.tables, sim.tables, "auto tables diverged");
    assert_eq!(auto.compressed, sim.compressed, "auto stream diverged");

    let t = backend_tallies(&auto);
    assert_eq!(
        t.auto_sim + t.auto_native,
        t.sim + t.native,
        "every auto launch records exactly one decision"
    );
    assert!(
        t.auto_sim > 0 && t.auto_native > 0,
        "workload must exercise both arms of the dispatcher (got {}/{})",
        t.auto_sim,
        t.auto_native
    );
}

/// A sanitized config no longer refuses the native backend: every
/// pipeline kernel carries an `AccessContract`, so the static analyzer
/// proves each launch before the uninstrumented blocks run and replays
/// the declared writes into the sanitizer's shadow state. The run
/// completes, stays byte-identical to the simulator, proves every
/// launch, and ends sanitizer-clean. (Uncontracted native launches on a
/// sanitized device still panic — covered by gpu-sim's backend tests.)
#[test]
fn native_backend_admits_sanitize_on_proved_contracts() {
    let d = dataset(0xFA11, 1_000);
    let reference = run(&d, &d.reads, cfg(BackendChoice::Sim, 1, 1, 1));
    let c = GsnpConfig {
        sanitize: true,
        contracts: true,
        ..cfg(BackendChoice::Native, 1, 1, 1)
    };
    let out = run(&d, &d.reads, c);
    assert_eq!(out.tables, reference.tables, "sanitized native diverged");
    assert_eq!(out.compressed, reference.compressed);
    assert!(out.stats.sanitizer.is_clean(), "{:?}", out.stats.sanitizer);
    let proofs = out.stats.contracts.totals();
    assert!(proofs.verified > 0, "no launch was proved");
    assert!(
        out.stats.contracts.all_verified(),
        "{:?}",
        out.stats.contracts.per_kernel
    );
    let t = backend_tallies(&out);
    assert_eq!(t.sim, 0, "no launch may fall back to the simulator");
    assert!(t.native > 0);
}
