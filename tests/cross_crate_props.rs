//! Property tests spanning crates: the invariants that make the
//! reproduction trustworthy, checked on arbitrary inputs.

use proptest::prelude::*;

use gsnp::core::counting::{base_occ_index, DenseWindow, SparseWindow};
use gsnp::core::likelihood::{
    likelihood_dense_site, likelihood_sparse_site, likelihood_sparse_site_pmatrix, sort_sparse_cpu,
};
use gsnp::core::model::NUM_GENOTYPES;
use gsnp::core::tables::{LogTable, NewPMatrix, PMatrix};
use gsnp::gpu_sim::Device;
use gsnp::seqio::window::{SiteObs, Window};
use gsnp::sortnet;

/// Arbitrary per-site observations (base, qual, coord, strand, uniq).
fn site_obs_strategy(read_len: u8) -> impl Strategy<Value = Vec<SiteObs>> {
    proptest::collection::vec(
        (0u8..4, 0u8..=63, 0..read_len, 0u8..2, any::<bool>()).prop_map(
            |(base, qual, coord, strand, uniq)| SiteObs {
                base,
                qual,
                coord,
                strand,
                uniq,
            },
        ),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sparse Algorithm 4 == dense Algorithm 1, bit for bit, on arbitrary
    /// observation multisets (the paper's §IV-G consistency claim).
    #[test]
    fn sparse_likelihood_equals_dense(sites in proptest::collection::vec(site_obs_strategy(40), 1..8)) {
        let window = Window { start: 0, obs: sites };
        let p = PMatrix::from_prior();
        let np = NewPMatrix::precompute(&p);
        let lt = LogTable::new();

        let mut dense = DenseWindow::alloc(window.len());
        dense.count(&window);
        let mut sw = SparseWindow::count(&window);
        sort_sparse_cpu(&mut sw);

        for site in 0..window.len() {
            let d = likelihood_dense_site(dense.site(site), &p, &lt);
            let s = likelihood_sparse_site(sw.site_words(site), 40, &np, &lt);
            let s2 = likelihood_sparse_site_pmatrix(sw.site_words(site), 40, &p, &lt);
            for n in 0..NUM_GENOTYPES {
                prop_assert_eq!(d[n].to_bits(), s[n].to_bits(), "site {} g {}", site, n);
                prop_assert_eq!(d[n].to_bits(), s2[n].to_bits(), "site {} g {}", site, n);
            }
        }
    }

    /// The dense cell index and the sparse word unpack agree on which
    /// (base, score, coord, strand) a word denotes.
    #[test]
    fn baseword_and_dense_index_agree(
        base in 0u8..4, score in 0u8..=63, coord in 0u8..=255, strand in 0u8..2,
        uniq in any::<bool>(),
    ) {
        let w = gsnp::core::baseword::pack(base, score, coord, strand, uniq);
        let (b, s, c, st, u) = gsnp::core::baseword::unpack(w);
        prop_assert_eq!(u, uniq);
        let idx = base_occ_index(b, s, c, st);
        prop_assert_eq!(idx, base_occ_index(base, score, coord, strand));
        prop_assert!(idx < gsnp::core::counting::SITE_CELLS);
    }

    /// Device multipass sort == host per-array sort on arbitrary batches.
    #[test]
    fn device_sort_matches_host(lens in proptest::collection::vec(0usize..70, 1..30), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut host = Vec::new();
        let mut spans = Vec::new();
        for &len in &lens {
            spans.push((host.len(), len));
            host.extend((0..len).map(|_| rng.gen::<u32>()));
        }
        let dev = Device::m2050();
        let buf = dev.upload(&host);
        sortnet::multipass_sort(&dev, &buf, &spans);
        let sorted = dev.download(&buf);
        let mut expect = host.clone();
        for &(off, len) in &spans {
            expect[off..off + len].sort_unstable();
        }
        prop_assert_eq!(sorted, expect);
    }

    /// The result table's text and column-compressed forms are mutually
    /// consistent on arbitrary tables.
    #[test]
    fn text_and_columnar_forms_agree(
        quals in proptest::collection::vec((0u8..=99, 0u16..50, 0u16..=1000), 1..80),
        start in 0u64..10_000,
    ) {
        use gsnp::seqio::result::{SnpRow, SnpTable};
        let rows: Vec<SnpRow> = quals
            .iter()
            .map(|&(q, depth, milli)| SnpRow {
                ref_base: q % 4,
                genotype: if depth == 0 { b'N' } else { b'W' },
                quality: q,
                best_base: q % 4,
                avg_qual_best: q.min(63),
                count_uniq_best: depth,
                count_all_best: depth,
                second_base: gsnp::seqio::base::N_CODE,
                avg_qual_second: 0,
                count_uniq_second: 0,
                count_all_second: 0,
                depth,
                rank_sum_milli: milli,
                copy_milli: milli,
                is_known_snp: (depth % 2) as u8,
            })
            .collect();
        let t = SnpTable::new("chrQ", start, rows);

        // text roundtrip
        let mut text = Vec::new();
        t.write_text(&mut text).unwrap();
        let from_text = SnpTable::read_text(std::io::Cursor::new(&text[..])).unwrap();
        prop_assert_eq!(&from_text, &t);

        // columnar roundtrip (CPU and GPU paths byte-identical)
        let bytes = gsnp::compress::column::compress_table(&t);
        let dev = Device::m2050();
        let (gpu_bytes, _) = gsnp::compress::column::compress_table_gpu(&dev, &t);
        prop_assert_eq!(&bytes, &gpu_bytes);
        let from_col = gsnp::compress::column::decompress_table(&bytes).unwrap();
        prop_assert_eq!(&from_col, &t);
    }

    /// The LZ baseline round-trips whatever the text serializer emits.
    #[test]
    fn lz_roundtrips_result_text(quals in proptest::collection::vec(0u8..=99, 1..60)) {
        use gsnp::seqio::result::{SnpRow, SnpTable};
        let rows: Vec<SnpRow> = quals
            .iter()
            .map(|&q| SnpRow {
                quality: q,
                genotype: b'N',
                ..SnpRow::default()
            })
            .collect();
        let t = SnpTable::new("c", 0, rows);
        let mut text = Vec::new();
        t.write_text(&mut text).unwrap();
        let c = gsnp::compress::lz::compress(&text);
        prop_assert_eq!(gsnp::compress::lz::decompress(&c).unwrap(), text);
    }
}
