//! The tentpole guarantee of the streaming executor: at any pipeline
//! depth, on any input, GSNP's results — the per-window tables AND the
//! compressed result file — are byte-identical to a serial run (§IV-G).

use proptest::prelude::*;

use gsnp::core::pipeline::{GsnpConfig, GsnpPipeline};
use gsnp::seqio::synth::{Dataset, SynthConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn streamed_run_is_byte_identical_to_serial(
        seed in 0u64..1_000_000,
        num_sites in 800u64..4_000,
        depth_deci in 40u32..140,        // sequencing depth 4.0..14.0
        coverage_pct in 40u32..100,
        snp_per_mille in 0u32..5,
        window_size in 137usize..1_500,
        pipeline_depth in 2usize..=4,
        compress_input in any::<bool>(),
        gpu_output in any::<bool>(),
    ) {
        let mut sc = SynthConfig::tiny(seed);
        sc.num_sites = num_sites;
        sc.depth = f64::from(depth_deci) / 10.0;
        sc.coverage = f64::from(coverage_pct) / 100.0;
        sc.snp_rate = f64::from(snp_per_mille) / 1_000.0;
        let d = Dataset::generate(sc);

        let cfg = |pipeline_depth| GsnpConfig {
            window_size,
            compress_input,
            gpu_output,
            pipeline_depth,
            ..Default::default()
        };
        let serial = GsnpPipeline::new(cfg(1)).run(&d.reads, &d.reference, &d.priors);
        let streamed = GsnpPipeline::new(cfg(pipeline_depth)).run(&d.reads, &d.reference, &d.priors);

        prop_assert_eq!(&streamed.tables, &serial.tables);
        prop_assert_eq!(&streamed.compressed, &serial.compressed);
        prop_assert_eq!(streamed.stats.num_sites, serial.stats.num_sites);
        prop_assert_eq!(streamed.stats.snp_count, serial.stats.snp_count);
        prop_assert_eq!(streamed.stats.windows, serial.stats.windows);
        prop_assert_eq!(streamed.stats.overlap.depth, pipeline_depth);
    }
}
