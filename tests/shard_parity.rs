//! The tentpole guarantee of the multi-device sharded window loop: at any
//! `(pipeline_depth, num_devices)`, on any input, GSNP's results — the
//! per-window tables AND the compressed result file — are byte-identical
//! to the serial single-device run (§IV-G), the group's hardware counters
//! sum to the serial totals (modulo the per-device table upload), and the
//! sharded path runs clean under the full sanitizer suite.

use proptest::prelude::*;

use gsnp::core::pipeline::{GsnpConfig, GsnpOutput, GsnpPipeline};
use gsnp::gpu_sim::HwCounters;
use gsnp::seqio::soap::AlignedRead;
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn cfg(pipeline_depth: usize, num_devices: usize) -> GsnpConfig {
    GsnpConfig {
        window_size: 700,
        pipeline_depth,
        num_devices,
        // Pin the launch-batch size so runs at different depths batch the
        // same windows together — the counter sum-invariance below needs
        // identical batch compositions (byte-identity does not; see
        // tests/batch_parity.rs for the cross-batch-size guarantee).
        launch_batch: 2,
        ..Default::default()
    }
}

fn run(d: &Dataset, reads: &[AlignedRead], c: GsnpConfig) -> GsnpOutput {
    GsnpPipeline::new(c).run(reads, &d.reference, &d.priors)
}

/// A dataset whose first quarter carries 8x the coverage of the rest, so
/// early windows cost far more device time than late ones — the shape
/// that starves static round-robin and exercises work stealing.
fn skewed(seed: u64) -> (Dataset, Vec<AlignedRead>) {
    let mut sc = SynthConfig::tiny(seed);
    sc.num_sites = 6_000;
    let d = Dataset::generate(sc);
    let hot = d.config.num_sites / 4;
    let mut reads = Vec::with_capacity(d.reads.len() * 2);
    for r in &d.reads {
        reads.push(r.clone());
        if r.pos < hot {
            for _ in 0..7 {
                reads.push(r.clone()); // same pos: sorted order preserved
            }
        }
    }
    (d, reads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_run_is_byte_identical_to_serial(
        seed in 0u64..1_000_000,
        num_sites in 800u64..4_000,
        depth_deci in 40u32..140,        // sequencing depth 4.0..14.0
        coverage_pct in 40u32..100,
        window_size in 137usize..1_500,
        depth_sel in 0usize..3,          // index into {1, 2, 4}
        num_devices in 2usize..=4,
        gpu_output in any::<bool>(),
    ) {
        let mut sc = SynthConfig::tiny(seed);
        sc.num_sites = num_sites;
        sc.depth = f64::from(depth_deci) / 10.0;
        sc.coverage = f64::from(coverage_pct) / 100.0;
        let d = Dataset::generate(sc);
        let pipeline_depth = [1usize, 2, 4][depth_sel];

        let c = |pipeline_depth, num_devices| GsnpConfig {
            window_size,
            gpu_output,
            pipeline_depth,
            num_devices,
            ..Default::default()
        };
        let serial = run(&d, &d.reads, c(1, 1));
        let sharded = run(&d, &d.reads, c(pipeline_depth, num_devices));

        prop_assert_eq!(&sharded.tables, &serial.tables);
        prop_assert_eq!(&sharded.compressed, &serial.compressed);
        prop_assert_eq!(sharded.stats.num_sites, serial.stats.num_sites);
        prop_assert_eq!(sharded.stats.snp_count, serial.stats.snp_count);
        prop_assert_eq!(sharded.stats.windows, serial.stats.windows);
        prop_assert_eq!(sharded.stats.overlap.devices.len(), num_devices);
    }
}

#[test]
fn skewed_coverage_full_grid_is_byte_identical() {
    let (d, reads) = skewed(0xC0FFEE);
    let serial = run(&d, &reads, cfg(1, 1));
    assert!(serial.stats.windows >= 8, "grid test needs several windows");
    for num_devices in 1..=4usize {
        for pipeline_depth in [1usize, 2, 4] {
            let sharded = run(&d, &reads, cfg(pipeline_depth, num_devices));
            assert_eq!(
                sharded.compressed, serial.compressed,
                "depth {pipeline_depth} x {num_devices} devices diverged"
            );
            assert_eq!(sharded.tables, serial.tables);
        }
    }
}

#[test]
fn sharded_sanitizer_sweep_is_clean() {
    let (d, reads) = skewed(7);
    let plain = run(&d, &reads, cfg(2, 3));
    let checked = run(
        &d,
        &reads,
        GsnpConfig {
            sanitize: true,
            ..cfg(2, 3)
        },
    );
    assert!(
        checked.stats.sanitizer.is_clean(),
        "sanitizer findings on the sharded path: {:?}",
        checked.stats.sanitizer
    );
    assert_eq!(checked.compressed, plain.compressed);
    // Per-device ledgers must each have been swept (sanitizer attached to
    // every group member, not just device 0).
    assert_eq!(checked.stats.ledgers.len(), 3);
    for led in &checked.stats.ledgers {
        assert!(led.sanitizer.is_clean());
    }
}

/// Counter sum-invariance: the group's hardware counters sum to the serial
/// single-device totals, except that each extra device pays the table
/// upload (`(N-1) x table_bytes` more h2d, one more transfer each).
#[test]
fn group_counters_sum_to_serial() {
    let (d, reads) = skewed(11);
    let serial = run(&d, &reads, cfg(1, 1));
    let sharded = run(&d, &reads, cfg(2, 3));
    assert_eq!(serial.stats.ledgers.len(), 1);
    assert_eq!(sharded.stats.ledgers.len(), 3);

    let sum = |ledgers: &[gsnp::gpu_sim::DeviceLedger]| {
        let mut launches = 0u64;
        let mut transfers = 0u64;
        let mut counters = HwCounters::default();
        for led in ledgers {
            launches += led.launches;
            transfers += led.transfers;
            counters += led.counters;
        }
        (launches, transfers, counters)
    };
    let (s_launch, s_xfer, s_ctr) = sum(&serial.stats.ledgers);
    let (g_launch, g_xfer, g_ctr) = sum(&sharded.stats.ledgers);

    assert_eq!(g_launch, s_launch, "kernel launches must be invariant");
    assert_eq!(
        g_xfer,
        s_xfer + 2,
        "one extra table transfer per extra device"
    );
    assert_eq!(
        g_ctr.h2d_bytes,
        s_ctr.h2d_bytes + 2 * sharded.stats.table_bytes,
        "one extra table upload per extra device"
    );
    // Everything else is per-window work, charged exactly once wherever
    // the window ran.
    let strip = |mut c: HwCounters| {
        c.h2d_bytes = 0;
        c
    };
    assert_eq!(strip(g_ctr), strip(s_ctr));
}
