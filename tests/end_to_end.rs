//! End-to-end integration: synthetic files → parsers → both pipelines →
//! compressed output → decompression, spanning every crate.

use std::io::Cursor;

use gsnp::baseline::{SoapSnpConfig, SoapSnpPipeline};
use gsnp::compress::column::WindowStream;
use gsnp::core::{GsnpConfig, GsnpCpuPipeline, GsnpPipeline};
use gsnp::seqio::fasta::Reference;
use gsnp::seqio::prior::PriorMap;
use gsnp::seqio::soap::{write_alignments, AlignmentReader};
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn small(seed: u64) -> Dataset {
    let mut cfg = SynthConfig::tiny(seed);
    cfg.num_sites = 2_000;
    cfg.read_len = 40;
    Dataset::generate(cfg)
}

/// Serialize all three inputs to their text formats and parse them back.
fn roundtrip_inputs(d: &Dataset) -> (Vec<gsnp::seqio::AlignedRead>, Reference, PriorMap) {
    let mut aln = Vec::new();
    write_alignments(&d.reads, &mut aln).unwrap();
    let mut fasta = Vec::new();
    d.reference.write_fasta(&mut fasta).unwrap();
    let mut prior = Vec::new();
    d.priors.write(&d.config.chr_name, &mut prior).unwrap();

    let reads: Vec<_> = AlignmentReader::new(Cursor::new(aln))
        .collect::<Result<_, _>>()
        .unwrap();
    let reference = Reference::read_fasta(Cursor::new(fasta)).unwrap();
    let priors = PriorMap::read(Cursor::new(prior)).unwrap();
    (reads, reference, priors)
}

#[test]
fn file_roundtrip_preserves_inputs() {
    let d = small(1);
    let (reads, reference, priors) = roundtrip_inputs(&d);
    assert_eq!(reads, d.reads);
    assert_eq!(reference, d.reference);
    assert_eq!(priors.len(), d.priors.len());
}

#[test]
fn pipelines_agree_bitwise_through_file_formats() {
    // The §IV-G property, exercised through the *parsed* inputs so format
    // serialization is part of the loop.
    let d = small(2);
    let (reads, reference, priors) = roundtrip_inputs(&d);

    let soap = SoapSnpPipeline::new(SoapSnpConfig {
        window_size: 600,
        ..Default::default()
    })
    .run(&reads, &reference, &priors);
    let gsnp = GsnpPipeline::new(GsnpConfig {
        window_size: 450,
        ..Default::default()
    })
    .run(&reads, &reference, &priors);
    let cpu = GsnpCpuPipeline::new(GsnpConfig {
        window_size: 999,
        ..Default::default()
    })
    .run(&reads, &reference, &priors);

    assert_eq!(soap.all_rows(), gsnp.all_rows());
    assert_eq!(soap.all_rows(), cpu.all_rows());
}

#[test]
fn compressed_output_decodes_to_text_output() {
    let d = small(3);
    let gsnp = GsnpPipeline::new(GsnpConfig {
        window_size: 512,
        ..Default::default()
    })
    .run(&d.reads, &d.reference, &d.priors);

    // Decode the compressed stream, serialize as text, reparse, compare.
    let mut text = Vec::new();
    for t in WindowStream::new(&gsnp.compressed) {
        t.unwrap().write_text(&mut text).unwrap();
    }
    let reparsed = gsnp::seqio::SnpRow::default(); // type anchor
    let _ = reparsed;
    let table = gsnp::seqio::result::SnpTable::read_text(Cursor::new(&text[..])).unwrap();
    assert_eq!(table.rows, gsnp.all_rows());
    assert_eq!(table.start_pos, 0);
}

#[test]
fn truth_recovery_end_to_end() {
    let mut cfg = SynthConfig::tiny(4);
    cfg.num_sites = 12_000;
    cfg.snp_rate = 5e-3;
    let d = Dataset::generate(cfg);
    let out = GsnpPipeline::new(GsnpConfig {
        window_size: 3_000,
        ..Default::default()
    })
    .run(&d.reads, &d.reference, &d.priors);
    let rows = out.all_rows();

    let mut hits = 0usize;
    let mut covered = 0usize;
    for t in &d.truth {
        let row = &rows[t.pos as usize];
        if row.depth >= 6 {
            covered += 1;
            if row.is_variant() {
                hits += 1;
            }
        }
    }
    assert!(covered >= 10, "need covered truth sites, got {covered}");
    assert!(
        hits as f64 / covered as f64 > 0.75,
        "recall {}/{covered}",
        hits
    );
}

#[test]
fn window_boundaries_tile_the_chromosome() {
    let d = small(5);
    for window in [7usize, 64, 333, 5_000] {
        let out = GsnpCpuPipeline::new(GsnpConfig {
            window_size: window,
            ..Default::default()
        })
        .run(&d.reads, &d.reference, &d.priors);
        assert_eq!(out.stats.num_sites, d.config.num_sites, "window {window}");
        let mut next = 0u64;
        for t in &out.tables {
            assert_eq!(t.start_pos, next);
            next += t.len() as u64;
        }
        assert_eq!(next, d.config.num_sites);
    }
}

#[test]
fn empty_chromosome_with_no_reads() {
    let d = small(6);
    let out = GsnpPipeline::new(GsnpConfig::default()).run(&[], &d.reference, &d.priors);
    assert_eq!(out.stats.num_sites, d.config.num_sites);
    assert_eq!(out.stats.snp_count, 0);
    assert!(out
        .all_rows()
        .iter()
        .all(|r| r.depth == 0 && r.genotype == b'N'));
    // And the compressed form of an all-uncalled chromosome is tiny.
    assert!(
        out.compressed.len() < 2_000,
        "{} bytes",
        out.compressed.len()
    );
}
