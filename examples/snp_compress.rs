//! The output-compression toolkit (§V) as a standalone demo.
//!
//! ```text
//! cargo run --release --example snp_compress
//! ```
//!
//! Compresses a SNP result table with the customized column schemes (on
//! both the CPU and the simulated GPU), compares against plain text and
//! the gzip-class LZ baseline, then demonstrates the downstream
//! sequential-read API: streaming windows out of the compressed file and
//! answering a range query without materializing the text.

use std::time::Instant;

use gsnp::compress::column::{compress_table, compress_table_gpu, write_window, WindowStream};
use gsnp::compress::lz;
use gsnp::core::{GsnpConfig, GsnpCpuPipeline};
use gsnp::gpu_sim::Device;
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn main() {
    // Produce a realistic result table by actually calling variants.
    let d = Dataset::generate(SynthConfig::ch21_mini(0.03));
    let out = GsnpCpuPipeline::new(GsnpConfig {
        window_size: 4_000,
        ..Default::default()
    })
    .run(&d.reads, &d.reference, &d.priors);
    let mut text = Vec::new();
    for t in &out.tables {
        t.write_text(&mut text).expect("in-memory write");
    }

    // --- Sizes ---
    let t0 = Instant::now();
    let gz = lz::compress(&text);
    let gz_time = t0.elapsed();
    let t0 = Instant::now();
    let mut columnar = Vec::new();
    for t in &out.tables {
        write_window(&mut columnar, t);
    }
    let col_time = t0.elapsed();

    println!("17-column result table, {} sites:", out.stats.num_sites);
    println!("  plain text       : {:>9} bytes", text.len());
    println!(
        "  LZ (gzip-class)  : {:>9} bytes  ({:.1}x, {:?})",
        gz.len(),
        text.len() as f64 / gz.len() as f64,
        gz_time
    );
    println!(
        "  GSNP column codec: {:>9} bytes  ({:.1}x, {:?})",
        columnar.len(),
        text.len() as f64 / columnar.len() as f64,
        col_time
    );

    // --- GPU path produces byte-identical output ---
    let dev = Device::m2050();
    let (cpu_bytes, _) = (compress_table(&out.tables[0]), ());
    let (gpu_bytes, stats) = compress_table_gpu(&dev, &out.tables[0]);
    assert_eq!(cpu_bytes, gpu_bytes);
    println!(
        "\nGPU RLE-DICT path: byte-identical to CPU ✓ \
         (modelled device time {:.2} ms for window 0)",
        stats.sim_time * 1e3
    );

    // --- Downstream API: stream + range query ---
    let t0 = Instant::now();
    let from = 3_000u64;
    let to = 3_400u64;
    let mut snps_in_range = 0usize;
    let mut rows_seen = 0usize;
    for window in WindowStream::new(&columnar) {
        let w = window.expect("own stream");
        let end = w.start_pos + w.len() as u64;
        if end <= from || w.start_pos >= to {
            continue;
        }
        for (i, row) in w.rows.iter().enumerate() {
            let pos = w.start_pos + i as u64;
            if (from..to).contains(&pos) {
                rows_seen += 1;
                if row.is_variant() {
                    snps_in_range += 1;
                }
            }
        }
    }
    println!(
        "range query [{from}, {to}): {rows_seen} rows decoded, {snps_in_range} variants, {:?} \
         (decompressed in memory, multiple passes — §V-B)",
        t0.elapsed()
    );
}
