//! Quickstart: call SNPs on a small synthetic chromosome with GSNP.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a reproducible synthetic dataset (reference + aligned short
//! reads + known-SNP priors), runs the GSNP pipeline on the simulated
//! GPU, and prints the variant calls next to the planted ground truth.

use gsnp::core::{GsnpConfig, GsnpPipeline};
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn main() {
    // 1. A reproducible synthetic workload: ~20k sites at 8x depth.
    let mut cfg = SynthConfig::tiny(42);
    cfg.num_sites = 20_000;
    cfg.chr_name = "demo".into();
    let dataset = Dataset::generate(cfg);
    println!(
        "dataset: {} sites, {} reads ({:.1}x depth, {:.0}% coverage), {} planted SNPs",
        dataset.config.num_sites,
        dataset.reads.len(),
        dataset.realized_depth(),
        dataset.realized_coverage() * 100.0,
        dataset.truth.len()
    );

    // 2. Run GSNP (sparse base_word representation, multipass sorting
    //    network, precomputed score tables, compressed output).
    let pipeline = GsnpPipeline::new(GsnpConfig {
        window_size: 4_000,
        ..Default::default()
    });
    let out = pipeline.run(&dataset.reads, &dataset.reference, &dataset.priors);

    // 3. Report the calls.
    let truth: std::collections::HashMap<u64, _> =
        dataset.truth.iter().map(|t| (t.pos, t.alleles)).collect();
    let mut called = 0;
    let mut confirmed = 0;
    println!(
        "\n{:>9}  {:>4}  {:>8}  {:>5}  {:>5}  truth",
        "position", "ref", "genotype", "qual", "depth"
    );
    for (i, row) in out.all_rows().iter().enumerate() {
        if !row.is_variant() || row.quality < 20 {
            continue;
        }
        called += 1;
        let t = truth.get(&(i as u64));
        if t.is_some() {
            confirmed += 1;
        }
        if called <= 15 {
            println!(
                "{:>9}  {:>4}  {:>8}  {:>5}  {:>5}  {}",
                i + 1,
                char::from(if row.ref_base < 4 {
                    b"ACGT"[row.ref_base as usize]
                } else {
                    b'N'
                }),
                char::from(row.genotype),
                row.quality,
                row.depth,
                t.map_or("novel?".to_string(), |a| format!("{:?}", a)),
            );
        }
    }
    println!(
        "\ncalled {called} variants at Q>=20; {confirmed} match planted truth \
         ({:.0}% precision)",
        confirmed as f64 / called.max(1) as f64 * 100.0
    );
    println!(
        "compressed output: {} bytes for {} sites ({:.2} bytes/site)",
        out.compressed.len(),
        out.stats.num_sites,
        out.compressed.len() as f64 / out.stats.num_sites as f64
    );
    let t = out.times;
    println!(
        "modelled device time: total {:.1} ms (likelihood {:.1} ms, output {:.1} ms)",
        t.total() * 1e3,
        t.likelihood() * 1e3,
        t.output * 1e3
    );
}
