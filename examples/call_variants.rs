//! File-based variant calling: the full three-input workflow.
//!
//! ```text
//! cargo run --release --example call_variants [-- <out_dir>]
//! ```
//!
//! Writes the three input files the paper's workflow consumes (SOAP-style
//! alignments sorted by position, a FASTA reference, and known-SNP
//! priors), re-reads them through the real parsers, calls variants with
//! GSNP, and writes both the compressed result file and a SOAPsnp-style
//! plain-text table — then verifies the compressed file decodes to the
//! same rows.

use std::fs;
use std::io::BufReader;
use std::path::PathBuf;

use gsnp::compress::column::WindowStream;
use gsnp::core::{GsnpConfig, GsnpPipeline};
use gsnp::seqio::fasta::Reference;
use gsnp::seqio::prior::PriorMap;
use gsnp::seqio::soap::{write_alignments, AlignmentReader};
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/call_variants_demo".into())
        .into();
    fs::create_dir_all(&dir)?;

    // --- Produce the three input files ---
    let dataset = Dataset::generate(SynthConfig::ch21_mini(0.02));
    let aln_path = dir.join("ch21.soap");
    let ref_path = dir.join("ch21.fa");
    let prior_path = dir.join("ch21.prior");
    {
        let mut f = fs::File::create(&aln_path)?;
        write_alignments(&dataset.reads, &mut f)?;
        let mut f = fs::File::create(&ref_path)?;
        dataset.reference.write_fasta(&mut f)?;
        let mut f = fs::File::create(&prior_path)?;
        dataset.priors.write(&dataset.config.chr_name, &mut f)?;
    }
    println!(
        "wrote inputs to {}: alignments {} bytes, reference {} bytes, priors {} bytes",
        dir.display(),
        fs::metadata(&aln_path)?.len(),
        fs::metadata(&ref_path)?.len(),
        fs::metadata(&prior_path)?.len(),
    );

    // --- Read them back through the real parsers ---
    let reference = Reference::read_fasta(BufReader::new(fs::File::open(&ref_path)?))?;
    let priors = PriorMap::read(BufReader::new(fs::File::open(&prior_path)?))?;
    let reads: Vec<_> = AlignmentReader::new(BufReader::new(fs::File::open(&aln_path)?))
        .collect::<Result<_, _>>()?;
    println!(
        "parsed {} alignments against {} ({} sites)",
        reads.len(),
        reference.name,
        reference.len()
    );

    // --- Call variants ---
    let out = GsnpPipeline::new(GsnpConfig::default()).run(&reads, &reference, &priors);
    println!(
        "called {} variants over {} sites in {} windows",
        out.stats.snp_count, out.stats.num_sites, out.stats.windows
    );

    // --- Write outputs ---
    let gsnp_path = dir.join("ch21.gsnp");
    fs::write(&gsnp_path, &out.compressed)?;
    let text_path = dir.join("ch21.consensus.txt");
    {
        let mut f = fs::File::create(&text_path)?;
        for t in &out.tables {
            t.write_text(&mut f)?;
        }
    }
    let gsnp_size = fs::metadata(&gsnp_path)?.len();
    let text_size = fs::metadata(&text_path)?.len();
    println!(
        "output: compressed {} bytes vs plain text {} bytes ({:.1}x smaller)",
        gsnp_size,
        text_size,
        text_size as f64 / gsnp_size as f64
    );

    // --- Verify the compressed file decodes to identical rows ---
    let bytes = fs::read(&gsnp_path)?;
    let decoded: Vec<_> = WindowStream::new(&bytes).collect::<Result<_, _>>()?;
    assert_eq!(
        decoded, out.tables,
        "compressed file must decode losslessly"
    );
    println!(
        "verified: compressed result decodes to the identical {} windows",
        decoded.len()
    );
    Ok(())
}
