//! SOAPsnp vs GSNP_CPU vs GSNP: identical results, different costs.
//!
//! ```text
//! cargo run --release --example compare_pipelines
//! ```
//!
//! Runs the three pipelines of the paper's Fig. 12 on one dataset,
//! asserts the §IV-G bit-exactness property (all three produce identical
//! result rows), and prints the per-component breakdown side by side.

use gsnp::baseline::{SoapSnpConfig, SoapSnpPipeline};
use gsnp::core::{ComponentTimes, GsnpConfig, GsnpCpuPipeline, GsnpPipeline};
use gsnp::seqio::synth::{Dataset, SynthConfig};

fn main() {
    let mut cfg = SynthConfig::tiny(7);
    cfg.num_sites = 8_000;
    cfg.read_len = 60;
    let d = Dataset::generate(cfg);
    println!(
        "dataset: {} sites, {} reads, {} planted SNPs\n",
        d.config.num_sites,
        d.reads.len(),
        d.truth.len()
    );

    let soap = SoapSnpPipeline::new(SoapSnpConfig {
        window_size: 2_000,
        ..Default::default()
    })
    .run(&d.reads, &d.reference, &d.priors);

    let gsnp_cfg = GsnpConfig {
        window_size: 2_000,
        ..Default::default()
    };
    let cpu = GsnpCpuPipeline::new(gsnp_cfg.clone()).run(&d.reads, &d.reference, &d.priors);
    let gsnp = GsnpPipeline::new(gsnp_cfg).run(&d.reads, &d.reference, &d.priors);

    // The paper's consistency requirement: identical output, bit for bit.
    assert_eq!(
        soap.all_rows(),
        cpu.all_rows(),
        "GSNP_CPU diverged from SOAPsnp"
    );
    assert_eq!(
        soap.all_rows(),
        gsnp.all_rows(),
        "GSNP diverged from SOAPsnp"
    );
    println!("consistency: all three pipelines produced identical rows ✓\n");

    let ms = |t: f64| format!("{:9.2}", t * 1e3);
    let row = |name: &str, f: fn(&ComponentTimes) -> f64| {
        println!(
            "{name:<12} {} {} {}",
            ms(f(&soap.times)),
            ms(f(&cpu.times)),
            ms(f(&gsnp.times))
        );
    };
    println!("component        SOAPsnp  GSNP_CPU      GSNP   (ms; GSNP = modelled device time)");
    println!("---------------------------------------------");
    row("cal_p", |t| t.cal_p);
    row("read_site", |t| t.read_site);
    row("counting", |t| t.counting);
    row("like_sort", |t| t.likelihood_sort);
    row("like_comp", |t| t.likelihood_comp);
    row("posterior", |t| t.posterior);
    row("output", |t| t.output);
    row("recycle", |t| t.recycle);
    row("TOTAL", ComponentTimes::total);
    println!(
        "\nspeedup vs SOAPsnp: GSNP_CPU {:.1}x, GSNP {:.1}x",
        soap.times.total() / cpu.times.total(),
        soap.times.total() / gsnp.times.total()
    );
    println!(
        "variants called: {} (identical across pipelines)",
        gsnp.stats.snp_count
    );
}
